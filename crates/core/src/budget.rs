//! Analysis budgets.
//!
//! The paper's Table 1 caps the unclustered flow- and context-sensitive
//! baseline at 15 minutes (several rows report "> 15min"). Every engine
//! entry point in this crate takes an [`AnalysisBudget`] so harnesses can
//! reproduce those capped rows without hanging.

use std::time::{Duration, Instant};

/// A step- and wall-clock budget for one analysis run.
///
/// # Examples
///
/// ```
/// use bootstrap_core::budget::AnalysisBudget;
///
/// let mut b = AnalysisBudget::steps(100);
/// for _ in 0..100 {
///     assert!(b.tick());
/// }
/// assert!(!b.tick(), "101st step exceeds the budget");
/// assert!(b.exhausted());
/// ```
#[derive(Clone, Debug)]
pub struct AnalysisBudget {
    max_steps: u64,
    steps: u64,
    deadline: Option<Instant>,
    exhausted: bool,
}

impl AnalysisBudget {
    /// An effectively unlimited budget.
    pub fn unlimited() -> Self {
        Self {
            max_steps: u64::MAX,
            steps: 0,
            deadline: None,
            exhausted: false,
        }
    }

    /// A budget of `max_steps` engine steps.
    pub fn steps(max_steps: u64) -> Self {
        Self {
            max_steps,
            steps: 0,
            deadline: None,
            exhausted: false,
        }
    }

    /// A wall-clock budget starting now.
    pub fn wall(limit: Duration) -> Self {
        Self {
            max_steps: u64::MAX,
            steps: 0,
            deadline: Some(Instant::now() + limit),
            exhausted: false,
        }
    }

    /// A combined step and wall-clock budget.
    pub fn steps_and_wall(max_steps: u64, limit: Duration) -> Self {
        Self {
            max_steps,
            steps: 0,
            deadline: Some(Instant::now() + limit),
            exhausted: false,
        }
    }

    /// Records one engine step. Returns `false` once the budget is
    /// exhausted (and from then on).
    #[inline]
    pub fn tick(&mut self) -> bool {
        if self.exhausted {
            return false;
        }
        self.steps += 1;
        if self.steps > self.max_steps {
            self.exhausted = true;
            return false;
        }
        // Check the clock only occasionally; Instant::now is not free.
        if self.steps.is_multiple_of(1024) {
            if let Some(d) = self.deadline {
                if Instant::now() > d {
                    self.exhausted = true;
                    return false;
                }
            }
        }
        true
    }

    /// Marks the budget exhausted immediately, regardless of steps or
    /// wall-clock remaining. Used when a resource other than time runs out
    /// mid-analysis (e.g. the interning arena's id capacity): discarding
    /// the partial result as [`Outcome::TimedOut`] is the same sound
    /// degradation as a step-budget expiry.
    pub fn exhaust(&mut self) {
        self.exhausted = true;
    }

    /// Steps consumed so far.
    pub fn steps_used(&self) -> u64 {
        self.steps
    }

    /// Returns `true` once the budget has been exceeded.
    pub fn exhausted(&self) -> bool {
        self.exhausted
    }
}

impl Default for AnalysisBudget {
    fn default() -> Self {
        Self::unlimited()
    }
}

/// The outcome of a budgeted computation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Outcome<T> {
    /// The computation finished within budget.
    Done(T),
    /// The budget ran out; any partial result is discarded because a
    /// truncated may-analysis would be unsound.
    TimedOut,
}

impl<T> Outcome<T> {
    /// Returns the value, panicking on [`Outcome::TimedOut`].
    ///
    /// # Panics
    ///
    /// Panics if the computation timed out.
    pub fn unwrap(self) -> T {
        match self {
            Outcome::Done(v) => v,
            Outcome::TimedOut => panic!("analysis exceeded its budget"),
        }
    }

    /// Returns `true` if the computation finished.
    pub fn is_done(&self) -> bool {
        matches!(self, Outcome::Done(_))
    }

    /// Converts to an [`Option`].
    pub fn ok(self) -> Option<T> {
        match self {
            Outcome::Done(v) => Some(v),
            Outcome::TimedOut => None,
        }
    }

    /// Maps the inner value.
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> Outcome<U> {
        match self {
            Outcome::Done(v) => Outcome::Done(f(v)),
            Outcome::TimedOut => Outcome::TimedOut,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_exhausts_quickly() {
        let mut b = AnalysisBudget::unlimited();
        for _ in 0..10_000 {
            assert!(b.tick());
        }
        assert!(!b.exhausted());
    }

    #[test]
    fn step_budget_exhausts() {
        let mut b = AnalysisBudget::steps(5);
        assert_eq!((0..10).filter(|_| b.tick()).count(), 5);
        assert!(b.exhausted());
    }

    #[test]
    fn wall_budget_expires() {
        let mut b = AnalysisBudget::wall(Duration::from_millis(0));
        // The clock is checked every 1024 ticks.
        let mut ok = true;
        for _ in 0..4096 {
            ok = b.tick();
            if !ok {
                break;
            }
        }
        assert!(!ok);
    }

    #[test]
    fn exhaust_fails_all_subsequent_ticks() {
        let mut b = AnalysisBudget::unlimited();
        assert!(b.tick());
        b.exhaust();
        assert!(b.exhausted());
        assert!(!b.tick());
    }

    #[test]
    fn outcome_api() {
        let d: Outcome<i32> = Outcome::Done(3);
        assert!(d.is_done());
        assert_eq!(d.clone().ok(), Some(3));
        assert_eq!(d.map(|x| x + 1).unwrap(), 4);
        let t: Outcome<i32> = Outcome::TimedOut;
        assert_eq!(t.ok(), None);
    }

    #[test]
    #[should_panic(expected = "exceeded its budget")]
    fn outcome_unwrap_panics_on_timeout() {
        Outcome::<()>::TimedOut.unwrap();
    }
}
