//! Analysis budgets.
//!
//! The paper's Table 1 caps the unclustered flow- and context-sensitive
//! baseline at 15 minutes (several rows report "> 15min"). Every engine
//! entry point in this crate takes an [`AnalysisBudget`] so harnesses can
//! reproduce those capped rows without hanging.
//!
//! Exhaustion is never a bare boolean: the budget records a
//! [`DegradeReason`] saying *why* it ran out (steps, wall clock, arena
//! capacity, injected fault), and [`AnalysisBudget::degraded`] converts
//! that into the [`Outcome::Degraded`] the precision ladder consumes.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::degrade::{DegradeReason, FaultKind, INJECTED_PANIC_MSG};

/// A step- and wall-clock budget for one analysis run.
///
/// # Examples
///
/// ```
/// use bootstrap_core::budget::AnalysisBudget;
/// use bootstrap_core::degrade::DegradeReason;
///
/// let mut b = AnalysisBudget::steps(100);
/// for _ in 0..100 {
///     assert!(b.tick());
/// }
/// assert!(!b.tick(), "101st step exceeds the budget");
/// assert!(b.exhausted());
/// assert_eq!(b.reason(), Some(DegradeReason::BudgetSteps));
/// ```
#[derive(Clone, Debug)]
pub struct AnalysisBudget {
    max_steps: u64,
    steps: u64,
    deadline: Option<Instant>,
    cancel: Option<Arc<AtomicBool>>,
    reason: Option<DegradeReason>,
    fault: Option<(FaultKind, u64)>,
}

impl AnalysisBudget {
    /// An effectively unlimited budget.
    pub fn unlimited() -> Self {
        Self {
            max_steps: u64::MAX,
            steps: 0,
            deadline: None,
            cancel: None,
            reason: None,
            fault: None,
        }
    }

    /// A budget of `max_steps` engine steps.
    pub fn steps(max_steps: u64) -> Self {
        Self {
            max_steps,
            ..Self::unlimited()
        }
    }

    /// A wall-clock budget starting now.
    pub fn wall(limit: Duration) -> Self {
        Self {
            deadline: Some(Instant::now() + limit),
            ..Self::unlimited()
        }
    }

    /// A combined step and wall-clock budget.
    pub fn steps_and_wall(max_steps: u64, limit: Duration) -> Self {
        Self {
            max_steps,
            deadline: Some(Instant::now() + limit),
            ..Self::unlimited()
        }
    }

    /// Tightens the wall-clock deadline to `deadline` if it is earlier
    /// than the current one (or the budget had none). Used by the daemon
    /// to thread a per-request deadline into budgets built from config.
    pub fn tighten_deadline(&mut self, deadline: Instant) {
        match self.deadline {
            Some(d) if d <= deadline => {}
            _ => self.deadline = Some(deadline),
        }
    }

    /// Attaches a cooperative cancellation flag, checked at the same
    /// cadence as the wall-clock deadline. When another thread sets the
    /// flag, the next deadline checkpoint exhausts the budget with
    /// [`DegradeReason::Cancelled`] and the engine degrades soundly.
    pub fn set_cancel_flag(&mut self, flag: Arc<AtomicBool>) {
        self.cancel = Some(flag);
    }

    /// Arms a deterministic fault: inject `kind` when the budget records
    /// its `at_tick`-th step. A no-op when a fault is already armed, so
    /// drivers can arm before handing the budget to nested engines.
    pub fn arm_fault(&mut self, kind: FaultKind, at_tick: u64) {
        if self.fault.is_none() {
            self.fault = Some((kind, at_tick));
        }
    }

    /// Records one engine step. Returns `false` once the budget is
    /// exhausted (and from then on).
    ///
    /// # Panics
    ///
    /// Panics with [`INJECTED_PANIC_MSG`] when an armed
    /// [`FaultKind::Panic`] fault fires at this tick.
    #[inline]
    pub fn tick(&mut self) -> bool {
        if self.reason.is_some() {
            return false;
        }
        self.steps += 1;
        if let Some((kind, at)) = self.fault {
            if self.steps == at {
                match kind {
                    FaultKind::Panic => panic!("{INJECTED_PANIC_MSG} (tick {at})"),
                    FaultKind::Budget => {
                        self.reason = Some(DegradeReason::Injected);
                        return false;
                    }
                    FaultKind::ArenaFull => {
                        self.reason = Some(DegradeReason::ArenaFull);
                        return false;
                    }
                }
            }
        }
        if self.steps > self.max_steps {
            self.reason = Some(DegradeReason::BudgetSteps);
            return false;
        }
        // Check the clock on the first tick — a pure wall budget must not
        // run 1023 steps past its deadline before noticing — then only
        // occasionally; Instant::now is not free.
        if self.steps == 1 || self.steps.is_multiple_of(1024) {
            return self.check_deadline();
        }
        true
    }

    /// Like [`AnalysisBudget::tick`], but always checks the wall-clock
    /// deadline. Used after consuming a `Call` summary, where one "step"
    /// can stand for an arbitrarily large amount of summarised work.
    #[inline]
    pub fn tick_checked(&mut self) -> bool {
        self.tick() && self.check_deadline()
    }

    #[inline]
    fn check_deadline(&mut self) -> bool {
        if let Some(flag) = &self.cancel {
            if flag.load(Ordering::Relaxed) {
                self.reason = Some(DegradeReason::Cancelled);
                return false;
            }
        }
        if let Some(d) = self.deadline {
            if Instant::now() > d {
                self.reason = Some(DegradeReason::BudgetWall);
                return false;
            }
        }
        true
    }

    /// Marks the budget exhausted immediately for `reason`, regardless of
    /// steps or wall-clock remaining. Used when a resource other than time
    /// runs out mid-analysis (e.g. the interning arena's id capacity):
    /// discarding the partial result as [`Outcome::Degraded`] is the same
    /// sound degradation as a step-budget expiry. The first reason wins.
    pub fn exhaust(&mut self, reason: DegradeReason) {
        self.reason.get_or_insert(reason);
    }

    /// Steps consumed so far.
    pub fn steps_used(&self) -> u64 {
        self.steps
    }

    /// Returns `true` once the budget has been exceeded.
    pub fn exhausted(&self) -> bool {
        self.reason.is_some()
    }

    /// Why the budget ran out, if it has.
    pub fn reason(&self) -> Option<DegradeReason> {
        self.reason
    }

    /// The [`Outcome::Degraded`] for this budget's exhaustion reason
    /// (defaults to [`DegradeReason::BudgetSteps`] if somehow consulted
    /// before exhaustion).
    pub fn degraded<T>(&self) -> Outcome<T> {
        Outcome::Degraded(self.reason.unwrap_or(DegradeReason::BudgetSteps))
    }
}

impl Default for AnalysisBudget {
    fn default() -> Self {
        Self::unlimited()
    }
}

/// The outcome of a budgeted computation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Outcome<T> {
    /// The computation finished within budget.
    Done(T),
    /// The budget ran out for the recorded reason; any partial result is
    /// discarded because a truncated may-analysis would be unsound.
    Degraded(DegradeReason),
}

impl<T> Outcome<T> {
    /// Returns the value, panicking on [`Outcome::Degraded`].
    ///
    /// # Panics
    ///
    /// Panics if the computation degraded.
    pub fn unwrap(self) -> T {
        match self {
            Outcome::Done(v) => v,
            Outcome::Degraded(r) => panic!("analysis exceeded its budget ({r})"),
        }
    }

    /// Returns `true` if the computation finished.
    pub fn is_done(&self) -> bool {
        matches!(self, Outcome::Done(_))
    }

    /// Converts to an [`Option`].
    pub fn ok(self) -> Option<T> {
        match self {
            Outcome::Done(v) => Some(v),
            Outcome::Degraded(_) => None,
        }
    }

    /// The degradation reason, if the computation fell short.
    pub fn reason(&self) -> Option<DegradeReason> {
        match self {
            Outcome::Done(_) => None,
            Outcome::Degraded(r) => Some(*r),
        }
    }

    /// Maps the inner value.
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> Outcome<U> {
        match self {
            Outcome::Done(v) => Outcome::Done(f(v)),
            Outcome::Degraded(r) => Outcome::Degraded(r),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_exhausts_quickly() {
        let mut b = AnalysisBudget::unlimited();
        for _ in 0..10_000 {
            assert!(b.tick());
        }
        assert!(!b.exhausted());
        assert!(b.reason().is_none());
    }

    #[test]
    fn step_budget_exhausts() {
        let mut b = AnalysisBudget::steps(5);
        assert_eq!((0..10).filter(|_| b.tick()).count(), 5);
        assert!(b.exhausted());
        assert_eq!(b.reason(), Some(DegradeReason::BudgetSteps));
    }

    #[test]
    fn wall_budget_expires_on_first_tick() {
        // An already-elapsed pure wall budget must fail its very first
        // tick, not coast for 1023 steps past the deadline.
        let mut b = AnalysisBudget::wall(Duration::from_millis(0));
        std::thread::sleep(Duration::from_millis(1));
        assert!(!b.tick());
        assert_eq!(b.reason(), Some(DegradeReason::BudgetWall));
    }

    #[test]
    fn wall_budget_expires_between_checkpoints_via_tick_checked() {
        let mut b = AnalysisBudget::wall(Duration::from_secs(3600));
        // Regular ticks between checkpoints don't touch the clock...
        for _ in 0..100 {
            assert!(b.tick());
        }
        // ...but a summary-consumption tick always does.
        b.deadline = Some(Instant::now() - Duration::from_millis(1));
        assert!(b.tick());
        assert!(!b.tick_checked());
        assert_eq!(b.reason(), Some(DegradeReason::BudgetWall));
    }

    #[test]
    fn exhaust_fails_all_subsequent_ticks_and_keeps_first_reason() {
        let mut b = AnalysisBudget::unlimited();
        assert!(b.tick());
        b.exhaust(DegradeReason::ArenaFull);
        assert!(b.exhausted());
        assert!(!b.tick());
        b.exhaust(DegradeReason::BudgetSteps);
        assert_eq!(b.reason(), Some(DegradeReason::ArenaFull));
        assert_eq!(
            b.degraded::<()>(),
            Outcome::Degraded(DegradeReason::ArenaFull)
        );
    }

    #[test]
    fn armed_budget_fault_fires_at_exact_tick() {
        let mut b = AnalysisBudget::steps(1000);
        b.arm_fault(FaultKind::Budget, 3);
        // Re-arming is a no-op: the first plan stays.
        b.arm_fault(FaultKind::ArenaFull, 1);
        assert!(b.tick());
        assert!(b.tick());
        assert!(!b.tick());
        assert_eq!(b.reason(), Some(DegradeReason::Injected));
    }

    #[test]
    fn armed_arena_fault_reports_arena_full() {
        let mut b = AnalysisBudget::unlimited();
        b.arm_fault(FaultKind::ArenaFull, 1);
        assert!(!b.tick());
        assert_eq!(b.reason(), Some(DegradeReason::ArenaFull));
    }

    #[test]
    fn armed_panic_fault_panics_with_marker() {
        let r = std::panic::catch_unwind(|| {
            let mut b = AnalysisBudget::steps(10);
            b.arm_fault(FaultKind::Panic, 2);
            b.tick();
            b.tick();
        });
        let payload = r.expect_err("fault must panic");
        assert_eq!(
            crate::degrade::classify_panic(payload.as_ref()),
            crate::degrade::PanicClass::Injected
        );
    }

    #[test]
    fn tighten_deadline_keeps_the_earlier_one() {
        let mut b = AnalysisBudget::steps(10);
        let near = Instant::now() + Duration::from_millis(1);
        let far = Instant::now() + Duration::from_secs(3600);
        b.tighten_deadline(far);
        b.tighten_deadline(near);
        assert_eq!(b.deadline, Some(near));
        // A later deadline never loosens an earlier one.
        b.tighten_deadline(far);
        assert_eq!(b.deadline, Some(near));
    }

    #[test]
    fn cancel_flag_exhausts_at_next_checkpoint() {
        let flag = Arc::new(AtomicBool::new(false));
        let mut b = AnalysisBudget::unlimited();
        b.set_cancel_flag(Arc::clone(&flag));
        assert!(b.tick());
        flag.store(true, Ordering::Relaxed);
        // Regular ticks between checkpoints don't observe the flag...
        assert!(b.tick());
        // ...but a checked tick does, and records Cancelled.
        assert!(!b.tick_checked());
        assert_eq!(b.reason(), Some(DegradeReason::Cancelled));
    }

    #[test]
    fn outcome_api() {
        let d: Outcome<i32> = Outcome::Done(3);
        assert!(d.is_done());
        assert_eq!(d.clone().ok(), Some(3));
        assert_eq!(d.reason(), None);
        assert_eq!(d.map(|x| x + 1).unwrap(), 4);
        let t: Outcome<i32> = Outcome::Degraded(DegradeReason::BudgetSteps);
        assert_eq!(t.ok(), None);
        let t: Outcome<i32> = Outcome::Degraded(DegradeReason::BudgetWall);
        assert_eq!(t.reason(), Some(DegradeReason::BudgetWall));
    }

    #[test]
    #[should_panic(expected = "exceeded its budget")]
    fn outcome_unwrap_panics_on_degradation() {
        Outcome::<()>::Degraded(DegradeReason::BudgetSteps).unwrap();
    }
}
