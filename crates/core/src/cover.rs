//! Alias covers: the cluster decompositions produced by the cascade (§2).
//!
//! A family of pointer subsets `P1 .. Pm` is a **disjunctive alias cover**
//! when (i) it covers every pointer and (ii) the aliases of any pointer `p`
//! are the union of its aliases computed within each subset containing it
//! (Theorems 6 and 7 of the paper establish this for Steensgaard
//! partitions and Andersen clusters respectively). When the subsets are
//! pairwise disjoint — Steensgaard partitions — the cover is a **disjoint
//! alias cover**.

use std::collections::BTreeMap;

use bootstrap_analyses::ClassId;
use bootstrap_ir::VarId;

/// Where a cluster came from in the cascade.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClusterOrigin {
    /// The entire pointer set (the unclustered baseline of Table 1).
    WholeProgram,
    /// A Steensgaard partition (equivalence class of pointers).
    Steensgaard(ClassId),
    /// An Andersen cluster refined out of a Steensgaard partition: the
    /// pointers of the partition that may point to `object` (`None` for
    /// the singleton cluster of a points-to-nothing pointer).
    Andersen {
        /// The parent Steensgaard partition.
        partition: ClassId,
        /// The shared pointed-to object.
        object: Option<VarId>,
    },
    /// A One-Flow cluster (optional middle cascade stage).
    OneFlow {
        /// The parent Steensgaard partition.
        partition: ClassId,
        /// The shared pointed-to object.
        object: Option<VarId>,
    },
}

/// One pointer cluster.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cluster {
    /// Index of this cluster within its [`AliasCover`].
    pub id: usize,
    /// Provenance in the cascade.
    pub origin: ClusterOrigin,
    /// The member pointers, sorted and deduplicated.
    pub members: Vec<VarId>,
}

impl Cluster {
    /// Creates a cluster, normalizing the member list.
    pub fn new(id: usize, origin: ClusterOrigin, mut members: Vec<VarId>) -> Self {
        members.sort();
        members.dedup();
        Self {
            id,
            origin,
            members,
        }
    }

    /// Number of member pointers.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Returns `true` if the cluster has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Membership test.
    pub fn contains(&self, v: VarId) -> bool {
        self.members.binary_search(&v).is_ok()
    }
}

/// A family of clusters forming an alias cover.
///
/// # Examples
///
/// ```
/// use bootstrap_core::cover::{AliasCover, Cluster, ClusterOrigin};
/// use bootstrap_ir::VarId;
///
/// let c0 = Cluster::new(0, ClusterOrigin::WholeProgram, vec![VarId::new(0), VarId::new(1)]);
/// let cover = AliasCover::new(vec![c0]);
/// assert!(cover.covers(&[VarId::new(0), VarId::new(1)]));
/// assert!(cover.is_disjoint());
/// assert_eq!(cover.max_cluster_size(), 2);
/// ```
#[derive(Clone, Debug, Default)]
pub struct AliasCover {
    clusters: Vec<Cluster>,
}

impl AliasCover {
    /// Creates a cover from clusters (re-indexing their ids).
    pub fn new(mut clusters: Vec<Cluster>) -> Self {
        for (i, c) in clusters.iter_mut().enumerate() {
            c.id = i;
        }
        Self { clusters }
    }

    /// The clusters.
    pub fn clusters(&self) -> &[Cluster] {
        &self.clusters
    }

    /// Number of clusters.
    pub fn len(&self) -> usize {
        self.clusters.len()
    }

    /// Returns `true` if there are no clusters.
    pub fn is_empty(&self) -> bool {
        self.clusters.is_empty()
    }

    /// The clusters containing `v` (more than one for disjunctive covers).
    pub fn clusters_containing(&self, v: VarId) -> impl Iterator<Item = &Cluster> + '_ {
        self.clusters.iter().filter(move |c| c.contains(v))
    }

    /// Checks cover condition (i): every pointer in `pointers` belongs to
    /// at least one cluster.
    pub fn covers(&self, pointers: &[VarId]) -> bool {
        pointers
            .iter()
            .all(|&p| self.clusters.iter().any(|c| c.contains(p)))
    }

    /// Returns `true` if no pointer appears in two clusters (a *disjoint*
    /// alias cover, e.g. Steensgaard partitions).
    pub fn is_disjoint(&self) -> bool {
        let mut seen = std::collections::HashSet::new();
        for c in &self.clusters {
            for &m in &c.members {
                if !seen.insert(m) {
                    return false;
                }
            }
        }
        true
    }

    /// The size of the largest cluster (0 for an empty cover) — the paper's
    /// "Max" columns in Table 1.
    pub fn max_cluster_size(&self) -> usize {
        self.clusters.iter().map(Cluster::len).max().unwrap_or(0)
    }

    /// Histogram of cluster sizes (`size -> how many clusters`), the data
    /// behind Figure 1.
    pub fn size_histogram(&self) -> BTreeMap<usize, usize> {
        let mut h = BTreeMap::new();
        for c in &self.clusters {
            *h.entry(c.len()).or_insert(0) += 1;
        }
        h
    }

    /// Total membership count (with multiplicity across overlapping
    /// clusters) — the denominator of the parallel binning heuristic.
    pub fn total_members(&self) -> usize {
        self.clusters.iter().map(Cluster::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: usize) -> VarId {
        VarId::new(i)
    }

    #[test]
    fn cluster_normalizes_members() {
        let c = Cluster::new(0, ClusterOrigin::WholeProgram, vec![v(3), v(1), v(3)]);
        assert_eq!(c.members, vec![v(1), v(3)]);
        assert!(c.contains(v(1)));
        assert!(!c.contains(v(2)));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn disjoint_detection() {
        let a = Cluster::new(0, ClusterOrigin::WholeProgram, vec![v(0), v(1)]);
        let b = Cluster::new(1, ClusterOrigin::WholeProgram, vec![v(2)]);
        let cover = AliasCover::new(vec![a.clone(), b]);
        assert!(cover.is_disjoint());
        let overlapping = Cluster::new(2, ClusterOrigin::WholeProgram, vec![v(1), v(2)]);
        let cover2 = AliasCover::new(vec![a, overlapping]);
        assert!(!cover2.is_disjoint());
    }

    #[test]
    fn covers_checks_every_pointer() {
        let a = Cluster::new(0, ClusterOrigin::WholeProgram, vec![v(0)]);
        let cover = AliasCover::new(vec![a]);
        assert!(cover.covers(&[v(0)]));
        assert!(!cover.covers(&[v(0), v(1)]));
    }

    #[test]
    fn histogram_counts_sizes() {
        let cover = AliasCover::new(vec![
            Cluster::new(0, ClusterOrigin::WholeProgram, vec![v(0)]),
            Cluster::new(0, ClusterOrigin::WholeProgram, vec![v(1)]),
            Cluster::new(0, ClusterOrigin::WholeProgram, vec![v(2), v(3)]),
        ]);
        let h = cover.size_histogram();
        assert_eq!(h[&1], 2);
        assert_eq!(h[&2], 1);
        assert_eq!(cover.max_cluster_size(), 2);
        assert_eq!(cover.total_members(), 4);
    }

    #[test]
    fn ids_reindexed() {
        let cover = AliasCover::new(vec![
            Cluster::new(7, ClusterOrigin::WholeProgram, vec![v(0)]),
            Cluster::new(9, ClusterOrigin::WholeProgram, vec![v(1)]),
        ]);
        assert_eq!(cover.clusters()[0].id, 0);
        assert_eq!(cover.clusters()[1].id, 1);
    }
}
