//! Per-phase profiling for the cascade (Table 1's cost columns, live).
//!
//! A [`PhaseProfile`] lives on the session and accumulates wall time, engine
//! steps, and invocation counts for the four cascade phases: Steensgaard
//! partitioning, the Andersen (clustering) refinement, relevant-statement
//! slicing (Algorithm 1, engine construction), and the FSCS summarization
//! itself. All counters are atomics so parallel LPT workers record into the
//! shared profile without locking; snapshots are monotonic.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// The cascade phases the profile distinguishes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Steensgaard's unification analysis + initial partitioning.
    Steensgaard,
    /// The bootstrapped Andersen (or One-Flow) refinement of oversized
    /// partitions.
    Andersen,
    /// Relevant-statement slicing and engine setup (Algorithm 1).
    Relevant,
    /// The flow- and context-sensitive summarization and queries
    /// (Algorithms 2–5).
    Fscs,
}

impl Phase {
    /// All phases, in cascade order.
    pub const ALL: [Phase; 4] = [
        Phase::Steensgaard,
        Phase::Andersen,
        Phase::Relevant,
        Phase::Fscs,
    ];

    /// The phase's stable display name.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Steensgaard => "steensgaard",
            Phase::Andersen => "andersen",
            Phase::Relevant => "relevant",
            Phase::Fscs => "fscs",
        }
    }
}

/// A snapshot of one phase's accumulated counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseStats {
    /// Total wall-clock time spent in the phase.
    pub wall: Duration,
    /// Engine steps performed in the phase (zero for phases that do not
    /// run the walk).
    pub steps: u64,
    /// Number of recorded work units (cluster runs, queries, cascade
    /// stages).
    pub invocations: u64,
}

#[derive(Default)]
struct PhaseAccum {
    nanos: AtomicU64,
    steps: AtomicU64,
    invocations: AtomicU64,
}

impl PhaseAccum {
    fn record(&self, wall: Duration, steps: u64) {
        self.nanos
            .fetch_add(wall.as_nanos() as u64, Ordering::Relaxed);
        self.steps.fetch_add(steps, Ordering::Relaxed);
        self.invocations.fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self) -> PhaseStats {
        PhaseStats {
            wall: Duration::from_nanos(self.nanos.load(Ordering::Relaxed)),
            steps: self.steps.load(Ordering::Relaxed),
            invocations: self.invocations.load(Ordering::Relaxed),
        }
    }
}

/// Thread-safe accumulator of per-phase counters.
#[derive(Default)]
pub struct PhaseProfile {
    steensgaard: PhaseAccum,
    andersen: PhaseAccum,
    relevant: PhaseAccum,
    fscs: PhaseAccum,
}

impl PhaseProfile {
    /// An empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    fn accum(&self, phase: Phase) -> &PhaseAccum {
        match phase {
            Phase::Steensgaard => &self.steensgaard,
            Phase::Andersen => &self.andersen,
            Phase::Relevant => &self.relevant,
            Phase::Fscs => &self.fscs,
        }
    }

    /// Adds one work unit's wall time and steps to `phase`.
    pub fn record(&self, phase: Phase, wall: Duration, steps: u64) {
        self.accum(phase).record(wall, steps);
    }

    /// The accumulated counters of `phase`.
    pub fn get(&self, phase: Phase) -> PhaseStats {
        self.accum(phase).snapshot()
    }

    /// A snapshot of every phase, in cascade order.
    pub fn snapshot(&self) -> PhaseSnapshot {
        PhaseSnapshot {
            steensgaard: self.steensgaard.snapshot(),
            andersen: self.andersen.snapshot(),
            relevant: self.relevant.snapshot(),
            fscs: self.fscs.snapshot(),
        }
    }
}

/// Snapshot of every phase's counters (see [`crate::Session::phase_stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseSnapshot {
    /// Steensgaard partitioning.
    pub steensgaard: PhaseStats,
    /// Andersen / One-Flow refinement.
    pub andersen: PhaseStats,
    /// Relevant-statement slicing and engine setup.
    pub relevant: PhaseStats,
    /// FSCS summarization and queries.
    pub fscs: PhaseStats,
}

impl PhaseSnapshot {
    /// Iterates phases with their stats, in cascade order.
    pub fn iter(&self) -> impl Iterator<Item = (Phase, PhaseStats)> {
        [
            (Phase::Steensgaard, self.steensgaard),
            (Phase::Andersen, self.andersen),
            (Phase::Relevant, self.relevant),
            (Phase::Fscs, self.fscs),
        ]
        .into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates_per_phase() {
        let p = PhaseProfile::new();
        p.record(Phase::Fscs, Duration::from_millis(2), 10);
        p.record(Phase::Fscs, Duration::from_millis(3), 5);
        p.record(Phase::Relevant, Duration::from_millis(1), 0);
        let snap = p.snapshot();
        assert_eq!(snap.fscs.wall, Duration::from_millis(5));
        assert_eq!(snap.fscs.steps, 15);
        assert_eq!(snap.fscs.invocations, 2);
        assert_eq!(snap.relevant.invocations, 1);
        assert_eq!(snap.steensgaard, PhaseStats::default());
        assert_eq!(snap.iter().count(), 4);
    }

    #[test]
    fn concurrent_recording_is_lossless() {
        let p = PhaseProfile::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let p = &p;
                scope.spawn(move || {
                    for _ in 0..100 {
                        p.record(Phase::Fscs, Duration::from_nanos(10), 1);
                    }
                });
            }
        });
        let snap = p.get(Phase::Fscs);
        assert_eq!(snap.steps, 400);
        assert_eq!(snap.invocations, 400);
        assert_eq!(snap.wall, Duration::from_nanos(4000));
    }

    #[test]
    fn phase_names_are_stable() {
        let names: Vec<&str> = Phase::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(names, vec!["steensgaard", "andersen", "relevant", "fscs"]);
    }
}
