//! Bootstrapped flow- and context-sensitive pointer alias analysis
//! (reproduction of Kahlon, PLDI 2008).
//!
//! The framework combines three strategies (§1 of the paper):
//!
//! 1. **Divide and conquer** — a cascade of flow/context-insensitive
//!    analyses ([`bootstrap_analyses`]) partitions the program's pointers
//!    into small clusters ([`cover`], [`session`]), each with a relevant
//!    statement slice ([`relevant`], Algorithm 1);
//! 2. **Summarization** — a flow- and context-sensitive analysis tracks
//!    maximally complete update sequences backwards per cluster
//!    ([`engine`], [`summary`], [`constraint`]; Algorithms 2–5), with
//!    interprocedural drivers and queries in [`analyzer`];
//! 3. **Parallelization** — clusters are independent; [`parallel`] shards
//!    them over threads and reproduces the paper's 5-machine simulation.
//!
//! # Quick start
//!
//! ```
//! use bootstrap_core::{Config, Session};
//!
//! let program = bootstrap_ir::parse_program(
//!     "int a; int b; int *p; int *q;
//!      void main() { p = &a; if (b) { q = p; } else { q = &b; } }",
//! )
//! .unwrap();
//! let session = Session::new(&program, Config::default());
//! let az = session.analyzer();
//! let exit = program.entry().unwrap().exit();
//! let p = program.var_named("p").unwrap();
//! let q = program.var_named("q").unwrap();
//! assert!(az.may_alias(p, q, exit).unwrap());
//! assert!(!az.must_alias(p, q, exit).unwrap());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyzer;
pub mod bdd;
pub mod budget;
pub mod constraint;
pub mod cover;
pub mod degrade;
pub mod engine;
pub mod fsci_cache;
mod fxhash;
pub mod incremental;
pub mod intern;
pub mod parallel;
mod persist;
pub mod profile;
pub mod relevant;
pub mod session;
pub mod summary;

pub use analyzer::{Analyzer, QueryError};
pub use bootstrap_analyses::andersen::SolverStats;
pub use bootstrap_store::{read_lifetime_counters, Store, StoreConfig, StoreCounters};
pub use budget::{AnalysisBudget, Outcome};
pub use constraint::Cond;
pub use cover::{AliasCover, Cluster, ClusterOrigin};
pub use degrade::{
    classify_panic, DegradeReason, FaultKind, FaultPhase, FaultPlan, LadderAnswer, PanicClass,
    Precision, INJECTED_PANIC_MSG,
};
pub use engine::{ClusterEngine, EngineCx, EngineOptions, NoOracle, PtsOracle};
pub use fsci_cache::FsciCacheStats;
pub use incremental::{diff_and_adopt, snapshot, DirtyReport, PartitionSnapshot};
pub use intern::{ArenaFull, CondId, DeadId, Interner, InternerStats};
pub use parallel::ClusterReport;
pub use profile::{Phase, PhaseSnapshot, PhaseStats};
pub use relevant::{relevant_statements, RelevantSet};
pub use session::{CascadeTimings, Config, MiddleStage, QueryLimits, Session};
pub use summary::{Source, SummaryTuple, Value};
