//! Points-to constraints attached to summary tuples (Definition 8).
//!
//! While building a maximally complete update sequence backwards, a store
//! `*u = w` whose target cannot be resolved yet (the cyclic /
//! same-Steensgaard-depth case) forks the sequence under a constraint:
//! either `u` points to the tracked pointer at that location or it does
//! not. Constraints are conjunctions of four atom forms:
//!
//! * `l: r → s` — `r` points to `s` at `l`;
//! * `l: r ↛ s` — `r` does not point to `s` at `l`;
//! * `l: r ≐ s` — `r` and `s` point to the same object at `l`;
//! * `l: r ≠ s` — `r` and `s` point to different objects at `l`.
//!
//! Conjunctions are kept in a sorted, deduplicated normal form with
//! syntactic contradiction detection. Conjunctions longer than a cap are
//! *widened* by dropping atoms — sound for a may-analysis (it only admits
//! more aliases), and the knob the paper would have turned with BDDs.

use std::fmt;

use bootstrap_ir::{Loc, VarId};

/// One points-to constraint atom (Definition 8).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Atom {
    /// `loc: ptr → obj`
    PointsTo {
        /// The program point the constraint refers to.
        loc: Loc,
        /// The constrained pointer.
        ptr: VarId,
        /// The pointed-to object.
        obj: VarId,
    },
    /// `loc: ptr ↛ obj`
    NotPointsTo {
        /// The program point the constraint refers to.
        loc: Loc,
        /// The constrained pointer.
        ptr: VarId,
        /// The object `ptr` must not point to.
        obj: VarId,
    },
    /// `loc: a ≐ b` (point to the same object)
    Eq {
        /// The program point the constraint refers to.
        loc: Loc,
        /// First pointer.
        a: VarId,
        /// Second pointer.
        b: VarId,
    },
    /// `loc: a ≠ b` (point to different objects)
    NotEq {
        /// The program point the constraint refers to.
        loc: Loc,
        /// First pointer.
        a: VarId,
        /// Second pointer.
        b: VarId,
    },
    /// The branch variable `var` tested true along the path (the paper's
    /// path-sensitivity extension, §3). Tracked only for function-local,
    /// address-not-taken variables, so the literal is stable between its
    /// definitions.
    BranchTrue {
        /// The tested variable.
        var: VarId,
    },
    /// The branch variable `var` tested false along the path.
    BranchFalse {
        /// The tested variable.
        var: VarId,
    },
}

impl Atom {
    /// The syntactic negation of this atom.
    pub fn negated(self) -> Atom {
        match self {
            Atom::PointsTo { loc, ptr, obj } => Atom::NotPointsTo { loc, ptr, obj },
            Atom::NotPointsTo { loc, ptr, obj } => Atom::PointsTo { loc, ptr, obj },
            Atom::Eq { loc, a, b } => Atom::NotEq { loc, a, b },
            Atom::NotEq { loc, a, b } => Atom::Eq { loc, a, b },
            Atom::BranchTrue { var } => Atom::BranchFalse { var },
            Atom::BranchFalse { var } => Atom::BranchTrue { var },
        }
    }

    /// Returns `true` for path literals ([`Atom::BranchTrue`] /
    /// [`Atom::BranchFalse`]).
    pub fn is_branch(self) -> bool {
        matches!(self, Atom::BranchTrue { .. } | Atom::BranchFalse { .. })
    }

    /// The branch variable of a path literal.
    pub fn branch_var(self) -> Option<VarId> {
        match self {
            Atom::BranchTrue { var } | Atom::BranchFalse { var } => Some(var),
            _ => None,
        }
    }

    fn normalized(self) -> Atom {
        // Eq/NotEq are symmetric: order operands canonically.
        match self {
            Atom::Eq { loc, a, b } if b < a => Atom::Eq { loc, a: b, b: a },
            Atom::NotEq { loc, a, b } if b < a => Atom::NotEq { loc, a: b, b: a },
            other => other,
        }
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Atom::PointsTo { loc, ptr, obj } => write!(f, "{loc}: {ptr} -> {obj}"),
            Atom::NotPointsTo { loc, ptr, obj } => write!(f, "{loc}: {ptr} -/> {obj}"),
            Atom::Eq { loc, a, b } => write!(f, "{loc}: {a} == {b}"),
            Atom::NotEq { loc, a, b } => write!(f, "{loc}: {a} != {b}"),
            Atom::BranchTrue { var } => write!(f, "{var}"),
            Atom::BranchFalse { var } => write!(f, "!{var}"),
        }
    }
}

/// A conjunction of [`Atom`]s in normal form.
///
/// # Examples
///
/// ```
/// use bootstrap_core::constraint::{Atom, Cond};
/// use bootstrap_ir::{FuncId, Loc, VarId};
///
/// let loc = Loc::new(FuncId::new(0), 1);
/// let a = Atom::PointsTo { loc, ptr: VarId::new(0), obj: VarId::new(1) };
/// let c = Cond::top().and(a, 8).unwrap();
/// assert!(!c.is_top());
/// // Conjoining the negation is a contradiction.
/// assert!(c.and(a.negated(), 8).is_none());
/// ```
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cond {
    atoms: Vec<Atom>,
    widened: bool,
}

impl Cond {
    /// The trivially true condition.
    pub fn top() -> Self {
        Self::default()
    }

    /// Returns `true` if this is the unconstrained condition.
    pub fn is_top(&self) -> bool {
        self.atoms.is_empty()
    }

    /// Rebuilds a condition from raw parts (atoms are normalized, sorted
    /// and deduplicated). Used by the persistent store to reconstruct a
    /// decoded condition exactly — including its widened flag, which
    /// [`Cond::and`] cannot reproduce for an arbitrary atom list.
    pub(crate) fn from_parts(atoms: Vec<Atom>, widened: bool) -> Cond {
        let mut atoms: Vec<Atom> = atoms.into_iter().map(Atom::normalized).collect();
        atoms.sort();
        atoms.dedup();
        Cond { atoms, widened }
    }

    /// Returns `true` if atoms were dropped to stay under the cap.
    pub fn is_widened(&self) -> bool {
        self.widened
    }

    /// The atoms of the conjunction, sorted.
    pub fn atoms(&self) -> &[Atom] {
        &self.atoms
    }

    /// Conjoins `atom`, returning `None` on syntactic contradiction. If the
    /// conjunction would exceed `cap` atoms it is widened instead (the new
    /// atom is dropped and the condition marked widened).
    #[must_use]
    pub fn and(&self, atom: Atom, cap: usize) -> Option<Cond> {
        let atom = atom.normalized();
        if self
            .atoms
            .binary_search(&atom.negated().normalized())
            .is_ok()
        {
            return None;
        }
        match self.atoms.binary_search(&atom) {
            Ok(_) => Some(self.clone()),
            Err(pos) => {
                if self.atoms.len() >= cap {
                    // Widen: drop the new atom. Sound for may-analyses.
                    let mut c = self.clone();
                    c.widened = true;
                    return Some(c);
                }
                let mut atoms = self.atoms.clone();
                atoms.insert(pos, atom);
                Some(Cond {
                    atoms,
                    widened: self.widened,
                })
            }
        }
    }

    /// Conjoins two conditions, returning `None` on contradiction.
    #[must_use]
    pub fn and_cond(&self, other: &Cond, cap: usize) -> Option<Cond> {
        let mut out = self.clone();
        for &a in &other.atoms {
            out = out.and(a, cap)?;
        }
        if other.widened {
            out.widened = true;
        }
        Some(out)
    }

    /// Checks satisfiability against an oracle for points-to facts.
    ///
    /// `pts` answers "may `ptr` point to `obj` at `loc`?" with
    /// `Some(set)` when the flow-sensitive points-to set is known, `None`
    /// when it is not (unknown atoms are treated as satisfiable — the
    /// sound direction for a may-analysis).
    pub fn satisfiable<F>(&self, mut pts: F) -> bool
    where
        F: FnMut(VarId, Loc) -> Option<Vec<VarId>>,
    {
        for atom in &self.atoms {
            match *atom {
                Atom::PointsTo { loc, ptr, obj } => {
                    if let Some(set) = pts(ptr, loc) {
                        if !set.contains(&obj) {
                            return false;
                        }
                    }
                }
                Atom::NotPointsTo { loc, ptr, obj } => {
                    if let Some(set) = pts(ptr, loc) {
                        // Unsatisfiable only if ptr *must* point to obj; a
                        // may-set proves must only when it is exactly {obj}
                        // and the pointer is known to be initialized, which
                        // we cannot establish here — so only the empty-set
                        // and singleton cases refute.
                        if set.len() == 1 && set[0] == obj {
                            // May still be satisfiable if ptr can be
                            // uninitialized/NULL; stay conservative.
                            continue;
                        }
                    }
                }
                Atom::Eq { loc, a, b } => {
                    if let (Some(sa), Some(sb)) = (pts(a, loc), pts(b, loc)) {
                        if !sa.iter().any(|x| sb.contains(x)) {
                            return false;
                        }
                    }
                }
                Atom::NotEq { .. } => {
                    // Refuting requires must-alias information; conservative.
                }
                // Path literals are only refutable syntactically (a
                // contradictory pair is rejected at conjunction time).
                Atom::BranchTrue { .. } | Atom::BranchFalse { .. } => {}
            }
        }
        true
    }

    /// Removes all path literals — applied when tuples are stored as
    /// function summaries, because summaries are reused across call sites
    /// and frames where the callee's local path literals are meaningless
    /// (and correlating them across frames would be unsound).
    #[must_use]
    pub fn drop_branch_atoms(&self) -> Cond {
        if !self.atoms.iter().any(|a| a.is_branch()) {
            return self.clone();
        }
        let mut c = self.clone();
        c.atoms.retain(|a| !a.is_branch());
        c
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.atoms.is_empty() {
            return write!(f, "true");
        }
        for (i, a) in self.atoms.iter().enumerate() {
            if i > 0 {
                write!(f, " /\\ ")?;
            }
            write!(f, "{a}")?;
        }
        if self.widened {
            write!(f, " (widened)")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bootstrap_ir::FuncId;

    fn loc(i: u32) -> Loc {
        Loc::new(FuncId::new(0), i)
    }

    fn pt(l: u32, p: usize, o: usize) -> Atom {
        Atom::PointsTo {
            loc: loc(l),
            ptr: VarId::new(p),
            obj: VarId::new(o),
        }
    }

    #[test]
    fn top_is_satisfiable_and_displays() {
        let c = Cond::top();
        assert!(c.is_top());
        assert!(c.satisfiable(|_, _| None));
        assert_eq!(c.to_string(), "true");
    }

    #[test]
    fn and_dedups_and_sorts() {
        let c = Cond::top()
            .and(pt(2, 0, 1), 8)
            .unwrap()
            .and(pt(1, 0, 1), 8)
            .unwrap()
            .and(pt(2, 0, 1), 8)
            .unwrap();
        assert_eq!(c.atoms().len(), 2);
        assert!(c.atoms().windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn contradiction_detected() {
        let c = Cond::top().and(pt(1, 0, 1), 8).unwrap();
        assert!(c.and(pt(1, 0, 1).negated(), 8).is_none());
        // Eq/NotEq are symmetric.
        let e = Atom::Eq {
            loc: loc(1),
            a: VarId::new(2),
            b: VarId::new(1),
        };
        let ne = Atom::NotEq {
            loc: loc(1),
            a: VarId::new(1),
            b: VarId::new(2),
        };
        let c = Cond::top().and(e, 8).unwrap();
        assert!(c.and(ne, 8).is_none());
    }

    #[test]
    fn widening_drops_atoms_but_stays_satisfiable() {
        let mut c = Cond::top();
        for i in 0..10 {
            c = c.and(pt(i, i as usize, i as usize + 1), 4).unwrap();
        }
        assert_eq!(c.atoms().len(), 4);
        assert!(c.is_widened());
        assert!(c.to_string().contains("widened"));
    }

    #[test]
    fn satisfiable_with_oracle() {
        let c = Cond::top().and(pt(1, 0, 1), 8).unwrap();
        // Oracle: v0 points to {v1} at every loc.
        assert!(c.satisfiable(|p, _| (p == VarId::new(0)).then(|| vec![VarId::new(1)])));
        // Oracle: v0 points to {v2} only.
        assert!(!c.satisfiable(|p, _| (p == VarId::new(0)).then(|| vec![VarId::new(2)])));
        // Unknown oracle: satisfiable.
        assert!(c.satisfiable(|_, _| None));
    }

    #[test]
    fn eq_refuted_by_disjoint_sets() {
        let e = Atom::Eq {
            loc: loc(0),
            a: VarId::new(0),
            b: VarId::new(1),
        };
        let c = Cond::top().and(e, 8).unwrap();
        let oracle = |p: VarId, _| {
            Some(if p == VarId::new(0) {
                vec![VarId::new(5)]
            } else {
                vec![VarId::new(6)]
            })
        };
        assert!(!c.satisfiable(oracle));
    }

    #[test]
    fn and_cond_merges() {
        let a = Cond::top().and(pt(1, 0, 1), 8).unwrap();
        let b = Cond::top().and(pt(2, 0, 1), 8).unwrap();
        let c = a.and_cond(&b, 8).unwrap();
        assert_eq!(c.atoms().len(), 2);
        assert!(a
            .and_cond(&Cond::top().and(pt(1, 0, 1).negated(), 8).unwrap(), 8)
            .is_none());
    }
}

#[cfg(test)]
mod branch_atom_tests {
    use super::*;

    fn bt(i: usize) -> Atom {
        Atom::BranchTrue { var: VarId::new(i) }
    }

    #[test]
    fn branch_negation_and_contradiction() {
        let a = bt(1);
        assert_eq!(a.negated(), Atom::BranchFalse { var: VarId::new(1) });
        assert_eq!(a.negated().negated(), a);
        assert!(a.is_branch());
        assert_eq!(a.branch_var(), Some(VarId::new(1)));
        let c = Cond::top().and(a, 8).unwrap();
        assert!(c.and(a.negated(), 8).is_none());
    }

    #[test]
    fn drop_branch_atoms_keeps_points_to_facts() {
        let loc = Loc::new(bootstrap_ir::FuncId::new(0), 1);
        let pts = Atom::PointsTo {
            loc,
            ptr: VarId::new(0),
            obj: VarId::new(1),
        };
        let c = Cond::top().and(bt(1), 8).unwrap().and(pts, 8).unwrap();
        let d = c.drop_branch_atoms();
        assert_eq!(d.atoms(), &[pts]);
        // No-op (and no reallocation semantics change) without literals.
        let plain = Cond::top().and(pts, 8).unwrap();
        assert_eq!(plain.drop_branch_atoms(), plain);
    }

    #[test]
    fn branch_atoms_display() {
        let c = Cond::top()
            .and(bt(3), 8)
            .unwrap()
            .and(bt(4).negated(), 8)
            .unwrap();
        let s = c.to_string();
        assert!(s.contains("v3"));
        assert!(s.contains("!v4"));
    }

    #[test]
    fn branch_atoms_are_satisfiable_under_any_oracle() {
        let c = Cond::top().and(bt(1), 8).unwrap();
        assert!(c.satisfiable(|_, _| None));
        assert!(c.satisfiable(|_, _| Some(vec![])));
    }
}
