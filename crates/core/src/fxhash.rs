//! A multiply-rotate hasher for the arena's hot integer-keyed tables.
//!
//! The interner's memo maps and the engine's processed set are probed on
//! every walk step with tiny keys (`u32` ids, id pairs, `Copy` worklist
//! tuples). The standard library's SipHash is DoS-resistant but costs more
//! than the lookups it guards here; all keys are analysis-internal (never
//! attacker-chosen), so a non-cryptographic mixer is safe and markedly
//! faster. Same construction as the compiler's FxHasher: rotate, xor,
//! multiply by a golden-ratio-derived odd constant.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier taken from the 64-bit golden ratio constant (odd, so the
/// multiplication is a bijection on `u64`).
const SEED: u64 = 0x517c_c1b7_2722_0a95;

/// The hasher state: one `u64` folded word by word.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add(u64::from_ne_bytes(chunk.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add(u64::from_ne_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

pub(crate) type FxBuildHasher = BuildHasherDefault<FxHasher>;
pub(crate) type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;
pub(crate) type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_keys_hash_equal_and_mix() {
        let hash_of = |parts: &[u64]| {
            let mut h = FxHasher::default();
            for &p in parts {
                h.write_u64(p);
            }
            h.finish()
        };
        assert_eq!(hash_of(&[1, 2]), hash_of(&[1, 2]));
        assert_ne!(hash_of(&[1, 2]), hash_of(&[2, 1]), "order must matter");
        // Nearby small keys should not collide (the common id pattern).
        let hashes: HashSet<u64> = (0u64..1024).map(|i| hash_of(&[i])).collect();
        assert_eq!(hashes.len(), 1024);
    }

    #[test]
    fn byte_stream_matches_itself_across_chunking() {
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10]);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn works_as_map_hasher() {
        let mut m: FxHashMap<(u32, u32), u32> = FxHashMap::default();
        for i in 0..100u32 {
            m.insert((i, i + 1), i);
        }
        assert_eq!(m.len(), 100);
        assert_eq!(m.get(&(41, 42)), Some(&41));
    }
}
