//! Summary tuples for the flow- and context-sensitive analysis (§3).
//!
//! The summary of a function `f` is a set of tuples `(p, loc, q, cond)`
//! recording a *maximally complete update sequence* from `q` to `p` leading
//! from the entry of `f` to `loc` under points-to constraints `cond`
//! (Definition 8). This crate stores summaries at function exits; the value
//! side of a tuple is a [`Value`]:
//!
//! * `Ptr(q)` — `p`'s value at `loc` equals `q`'s value at the entry of
//!   `f` (the splice point for the caller);
//! * `Addr(o)` — the sequence bottoms out at `p = &o` inside `f`;
//! * `Null` — the sequence bottoms out at `p = NULL` inside `f`.
//!
//! `Ptr(p)` tuples (identity) encode the paper's *Retain* sets: some path
//! reaches `loc` without updating `p`.

use std::collections::HashMap;
use std::fmt;

use bootstrap_ir::{FuncId, Program, VarId};

use crate::constraint::Cond;
use crate::intern::CondId;

/// The value side of a summary tuple.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// The value some variable held at the enclosing function's entry.
    Ptr(VarId),
    /// The address of an object (`&o`, a heap site, or a function object).
    Addr(VarId),
    /// The null value (also models freed pointers).
    Null,
}

impl Value {
    /// Renders the value with source-level names.
    pub fn display(self, program: &Program) -> String {
        match self {
            Value::Ptr(v) => program.var(v).name().to_string(),
            Value::Addr(o) => format!("&{}", program.var(o).name()),
            Value::Null => "NULL".to_string(),
        }
    }
}

/// A fully resolved value origin, produced by the interprocedural drivers:
/// unlike [`Value`], a source never refers to a function-entry state.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Source {
    /// The address of an object.
    Addr(VarId),
    /// The null value.
    Null,
    /// The (uninitialized) value variable `v` held at *program* entry.
    EntryVar(VarId),
}

impl Source {
    /// Renders the source with source-level names.
    pub fn display(self, program: &Program) -> String {
        match self {
            Source::Addr(o) => format!("&{}", program.var(o).name()),
            Source::Null => "NULL".to_string(),
            Source::EntryVar(v) => format!("entry({})", program.var(v).name()),
        }
    }

    /// Returns `true` if two sources denote the same pointer value, i.e.
    /// pointers holding them are aliased (Theorem 5: a common maximally
    /// complete update-sequence origin).
    pub fn same_value(self, other: Source) -> bool {
        self == other
    }
}

/// A summary tuple at a function's exit: `(target, value, cond)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SummaryTuple {
    /// The pointer whose value the tuple describes (`p`).
    pub target: VarId,
    /// The value `p` may hold at the exit (`q` in the paper).
    pub value: Value,
    /// The points-to constraints under which the update sequence is
    /// feasible (Definition 8).
    pub cond: Cond,
}

impl SummaryTuple {
    /// Renders the tuple in the paper's `(p, loc, q, cond)` shape, with
    /// `loc` fixed to the function exit.
    pub fn display(&self, program: &Program, func: FuncId) -> String {
        format!(
            "({}, exit({}), {}, {})",
            program.var(self.target).name(),
            program.func(func).name(),
            self.value.display(program),
            self.cond
        )
    }
}

/// Key for a function-exit summary: which function, which target pointer.
pub type SummaryKey = (FuncId, VarId);

/// A store of function-exit summaries for one cluster.
///
/// Conditions are stored as interned [`CondId`]s: interning is canonical
/// within an arena, so the id-level equality used by [`SummaryStore::put`]
/// to detect fixpoint changes coincides with structural equality. Display
/// and cross-arena comparison resolve through the engine's
/// [`crate::intern::Interner`] (see `ClusterEngine::summary_snapshot`).
#[derive(Clone, Debug, Default)]
pub struct SummaryStore {
    entries: HashMap<SummaryKey, Vec<(Value, CondId)>>,
}

impl SummaryStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// The tuples for `key`, if computed.
    pub fn get(&self, key: &SummaryKey) -> Option<&[(Value, CondId)]> {
        self.entries.get(key).map(Vec::as_slice)
    }

    /// Returns `true` if `key` has an entry (possibly still empty during a
    /// fixpoint).
    pub fn contains(&self, key: &SummaryKey) -> bool {
        self.entries.contains_key(key)
    }

    /// Inserts or replaces the tuples for `key`; returns `true` if the set
    /// changed.
    pub fn put(&mut self, key: SummaryKey, mut tuples: Vec<(Value, CondId)>) -> bool {
        tuples.sort();
        tuples.dedup();
        match self.entries.get(&key) {
            Some(old) if *old == tuples => false,
            _ => {
                self.entries.insert(key, tuples);
                true
            }
        }
    }

    /// Ensures an (empty) entry exists; returns `true` if it was created.
    pub fn ensure(&mut self, key: SummaryKey) -> bool {
        match self.entries.entry(key) {
            std::collections::hash_map::Entry::Occupied(_) => false,
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(Vec::new());
                true
            }
        }
    }

    /// Total number of tuples across all entries (the paper's summary-size
    /// metric).
    pub fn tuple_count(&self) -> usize {
        self.entries.values().map(Vec::len).sum()
    }

    /// Number of `(function, target)` entries.
    pub fn entry_count(&self) -> usize {
        self.entries.len()
    }

    /// Iterates over all entries.
    pub fn iter(&self) -> impl Iterator<Item = (&SummaryKey, &Vec<(Value, CondId)>)> {
        self.entries.iter()
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Ptr(v) => write!(f, "{v}"),
            Value::Addr(o) => write!(f, "&{o}"),
            Value::Null => write!(f, "NULL"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bootstrap_ir::FuncId;

    fn v(i: usize) -> VarId {
        VarId::new(i)
    }

    #[test]
    fn source_same_value() {
        assert!(Source::Addr(v(1)).same_value(Source::Addr(v(1))));
        assert!(!Source::Addr(v(1)).same_value(Source::Addr(v(2))));
        assert!(!Source::Addr(v(1)).same_value(Source::Null));
        assert!(Source::EntryVar(v(3)).same_value(Source::EntryVar(v(3))));
    }

    #[test]
    fn store_put_detects_change_and_dedups() {
        let mut s = SummaryStore::new();
        let key = (FuncId::new(0), v(1));
        assert!(s.put(
            key,
            vec![
                (Value::Ptr(v(1)), CondId::TOP),
                (Value::Ptr(v(1)), CondId::TOP)
            ]
        ));
        assert_eq!(s.get(&key).unwrap().len(), 1, "duplicates removed");
        assert!(
            !s.put(key, vec![(Value::Ptr(v(1)), CondId::TOP)]),
            "same set"
        );
        assert!(s.put(key, vec![(Value::Null, CondId::TOP)]), "changed set");
        assert_eq!(s.tuple_count(), 1);
        assert_eq!(s.entry_count(), 1);
    }

    #[test]
    fn ensure_creates_empty_entry_once() {
        let mut s = SummaryStore::new();
        let key = (FuncId::new(1), v(2));
        assert!(!s.contains(&key));
        assert!(s.ensure(key));
        assert!(!s.ensure(key));
        assert_eq!(s.get(&key).unwrap().len(), 0);
    }

    #[test]
    fn value_display_uses_names() {
        let p = bootstrap_ir::parse_program("int a; int *x; void main() { x = &a; }").unwrap();
        let a = p.var_named("a").unwrap();
        let x = p.var_named("x").unwrap();
        assert_eq!(Value::Addr(a).display(&p), "&a");
        assert_eq!(Value::Ptr(x).display(&p), "x");
        assert_eq!(Value::Null.display(&p), "NULL");
        assert_eq!(Source::EntryVar(x).display(&p), "entry(x)");
    }
}
