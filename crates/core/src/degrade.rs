//! Degradation taxonomy, precision tiers, and deterministic fault injection.
//!
//! The bootstrapping cascade keeps a *sound* coarse answer available at
//! every tier (Steensgaard ⊇ Andersen ⊇ FSCS), so an engine that runs out
//! of budget, exhausts its interning arena, or panics never has to fail a
//! query outright: it degrades to the next-coarser tier and records *why*.
//! This module is the shared vocabulary for that layer:
//!
//! - [`DegradeReason`] — why a computation fell short of full precision;
//! - [`Precision`] — which tier of the ladder actually answered;
//! - [`FaultPlan`] — a seeded, deterministic fault injector used by the
//!   fuzz harness and CI to prove the isolation properties hold.

use std::any::Any;
use std::fmt;

use crate::constraint::Cond;
use crate::summary::Source;

/// Panic message used by [`FaultKind::Panic`] injection, recognised by
/// [`classify_panic`] so injected panics are distinguishable from organic
/// ones in reports and fuzz invariants.
pub const INJECTED_PANIC_MSG: &str = "fault injection: deliberate panic";

/// Why an analysis degraded below full FSCS precision.
///
/// Ordered roughly by "how surprising": budget expiries are expected
/// operational events, arena exhaustion is a capacity event, panics are
/// defects (isolated, not propagated), and injected faults come from a
/// [`FaultPlan`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DegradeReason {
    /// The step budget ran out.
    BudgetSteps,
    /// The wall-clock deadline passed.
    BudgetWall,
    /// The interning arena hit its id capacity.
    ArenaFull,
    /// The cluster's worker panicked; the panic was caught and classified.
    Panicked {
        /// What kind of panic was caught.
        class: PanicClass,
    },
    /// A deterministic [`FaultPlan`] fired (budget-exhaustion flavour).
    Injected,
    /// The request owning this work was cancelled (client disconnected or
    /// the server is shutting down); the partial result is discarded.
    Cancelled,
}

impl DegradeReason {
    /// Stable lowercase label for reports and JSON.
    pub fn label(self) -> &'static str {
        match self {
            DegradeReason::BudgetSteps => "budget-steps",
            DegradeReason::BudgetWall => "budget-wall",
            DegradeReason::ArenaFull => "arena-full",
            DegradeReason::Panicked {
                class: PanicClass::Injected,
            } => "panicked-injected",
            DegradeReason::Panicked {
                class: PanicClass::WorkerLost,
            } => "panicked-worker-lost",
            DegradeReason::Panicked {
                class: PanicClass::Other,
            } => "panicked",
            DegradeReason::Injected => "injected",
            DegradeReason::Cancelled => "cancelled",
        }
    }
}

impl fmt::Display for DegradeReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Classification of a caught panic payload.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PanicClass {
    /// The panic message matches [`INJECTED_PANIC_MSG`].
    Injected,
    /// No panic was caught: the worker thread vanished without delivering
    /// its report (used by the parallel driver's per-slot accounting).
    WorkerLost,
    /// Any other panic (assertion failure, arithmetic overflow, ...).
    Other,
}

/// Classifies a panic payload from [`std::panic::catch_unwind`].
pub fn classify_panic(payload: &(dyn Any + Send)) -> PanicClass {
    let msg = payload
        .downcast_ref::<&str>()
        .copied()
        .or_else(|| payload.downcast_ref::<String>().map(String::as_str));
    match msg {
        Some(m) if m.contains(INJECTED_PANIC_MSG) => PanicClass::Injected,
        _ => PanicClass::Other,
    }
}

/// Which tier of the precision ladder answered a query.
///
/// The ordering is precision-descending: `Fscs < Andersen < Steensgaard`,
/// so `max` over a set of consulted tiers yields the *coarsest* one — the
/// confidence tier of a finding built from several resolutions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Precision {
    /// Flow- and context-sensitive summary walk (full precision).
    Fscs,
    /// Flow-insensitive Andersen points-to over the cluster's relevant
    /// slice, unioned across the alias partition.
    Andersen,
    /// The Steensgaard pointee partition (coarsest sound tier).
    Steensgaard,
}

impl Precision {
    /// Stable lowercase label for reports and JSON.
    pub fn label(self) -> &'static str {
        match self {
            Precision::Fscs => "fscs",
            Precision::Andersen => "andersen",
            Precision::Steensgaard => "steensgaard",
        }
    }

    /// All tiers, precision-descending.
    pub const ALL: [Precision; 3] = [Precision::Fscs, Precision::Andersen, Precision::Steensgaard];
}

impl fmt::Display for Precision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A source query answer from the precision ladder: always present, always
/// sound, tagged with the tier that produced it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LadderAnswer {
    /// The (over-approximate) value sources, with their path conditions.
    /// Coarser tiers report [`Cond::top`] conditions.
    pub sources: Vec<(Source, Cond)>,
    /// The tier that produced `sources`.
    pub precision: Precision,
    /// Why the ladder fell below [`Precision::Fscs`] (`None` at full
    /// precision).
    pub reason: Option<DegradeReason>,
}

impl LadderAnswer {
    /// A full-precision answer.
    pub fn fscs(sources: Vec<(Source, Cond)>) -> Self {
        Self {
            sources,
            precision: Precision::Fscs,
            reason: None,
        }
    }

    /// `true` when the answer came from a coarser tier than FSCS.
    pub fn is_degraded(&self) -> bool {
        self.precision != Precision::Fscs
    }
}

/// What kind of fault a [`FaultPlan`] injects.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Panic with [`INJECTED_PANIC_MSG`] at the chosen tick.
    Panic,
    /// Exhaust the budget ([`DegradeReason::Injected`]) at the chosen tick.
    Budget,
    /// Simulate arena-id exhaustion ([`DegradeReason::ArenaFull`]).
    ArenaFull,
}

impl FaultKind {
    /// Stable lowercase label.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::Panic => "panic",
            FaultKind::Budget => "budget",
            FaultKind::ArenaFull => "arena-full",
        }
    }

    /// All fault kinds.
    pub const ALL: [FaultKind; 3] = [FaultKind::Panic, FaultKind::Budget, FaultKind::ArenaFull];
}

/// Which engine phase a [`FaultPlan`] targets.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultPhase {
    /// Per-cluster summary fixpoint (the cluster drivers).
    Summaries,
    /// A top-level source/alias query.
    Query,
    /// An FSCI oracle (dovetailed points-to) computation.
    Oracle,
    /// A persistent-store consult: the fault treats the entry as corrupt,
    /// forcing a recompute (the store's invalidation path).
    Store,
    /// The analysis daemon's serving loop: connection drops, worker
    /// stalls, and journal corruption at the chosen request tick. Inert in
    /// plain (non-daemon) sessions — no engine budget carries this phase.
    Serve,
}

impl FaultPhase {
    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            FaultPhase::Summaries => "summaries",
            FaultPhase::Query => "query",
            FaultPhase::Oracle => "oracle",
            FaultPhase::Store => "store",
            FaultPhase::Serve => "serve",
        }
    }

    /// Parses a phase name as printed by [`FaultPhase::name`].
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "summaries" => Some(FaultPhase::Summaries),
            "query" => Some(FaultPhase::Query),
            "oracle" => Some(FaultPhase::Oracle),
            "store" => Some(FaultPhase::Store),
            "serve" => Some(FaultPhase::Serve),
            _ => None,
        }
    }

    /// All phases.
    pub const ALL: [FaultPhase; 5] = [
        FaultPhase::Summaries,
        FaultPhase::Query,
        FaultPhase::Oracle,
        FaultPhase::Store,
        FaultPhase::Serve,
    ];
}

/// A seeded, deterministic fault: inject `kind` at the `at_tick`-th budget
/// tick of the named `phase` (optionally only in one cluster).
///
/// Determinism matters: the same plan against the same program must fire at
/// the same point on every run and on every retry, so fuzz invariants can
/// compare faulted runs against clean ones tick-for-tick.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct FaultPlan {
    /// Phase whose budget carries the fault.
    pub phase: FaultPhase,
    /// What to inject.
    pub kind: FaultKind,
    /// Fire when the phase's budget records this tick (1-based).
    pub at_tick: u64,
    /// Restrict a [`FaultPhase::Summaries`] fault to one cluster slot;
    /// `None` hits every cluster.
    pub cluster: Option<usize>,
}

impl FaultPlan {
    /// Derives a plan from a seed (splitmix64 over the seed bits), for
    /// fuzz campaigns that want one deterministic fault per iteration.
    pub fn from_seed(seed: u64) -> Self {
        let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut next = move || {
            z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut x = z;
            x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            x ^ (x >> 31)
        };
        let phase = FaultPhase::ALL[(next() % FaultPhase::ALL.len() as u64) as usize];
        let kind = FaultKind::ALL[(next() % 3) as usize];
        let at_tick = 1 + next() % 64;
        Self {
            phase,
            kind,
            at_tick,
            cluster: None,
        }
    }

    /// `true` when this plan applies to the given phase and cluster slot
    /// (`cluster = None` in the argument means "not cluster work").
    pub fn applies_to(&self, phase: FaultPhase, cluster: Option<usize>) -> bool {
        self.phase == phase && self.cluster.is_none_or(|want| cluster == Some(want))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_stable() {
        assert_eq!(DegradeReason::BudgetSteps.label(), "budget-steps");
        assert_eq!(DegradeReason::BudgetWall.label(), "budget-wall");
        assert_eq!(DegradeReason::ArenaFull.label(), "arena-full");
        assert_eq!(
            DegradeReason::Panicked {
                class: PanicClass::Injected
            }
            .label(),
            "panicked-injected"
        );
        assert_eq!(DegradeReason::Injected.to_string(), "injected");
        assert_eq!(Precision::Fscs.label(), "fscs");
        assert_eq!(Precision::Andersen.to_string(), "andersen");
        assert_eq!(Precision::Steensgaard.label(), "steensgaard");
    }

    #[test]
    fn precision_max_is_coarsest() {
        assert_eq!(
            Precision::Fscs.max(Precision::Andersen),
            Precision::Andersen
        );
        assert_eq!(
            Precision::ALL.into_iter().max(),
            Some(Precision::Steensgaard)
        );
    }

    #[test]
    fn classify_recognises_injected_panics() {
        // Real panic payloads box a `&str` or `String`; mirror that shape.
        let payload: Box<dyn Any + Send> = Box::new(INJECTED_PANIC_MSG);
        assert_eq!(classify_panic(payload.as_ref()), PanicClass::Injected);
        let payload: Box<dyn Any + Send> = Box::new(format!("{INJECTED_PANIC_MSG} (tick 3)"));
        assert_eq!(classify_panic(payload.as_ref()), PanicClass::Injected);
        let payload: Box<dyn Any + Send> = Box::new("index out of bounds");
        assert_eq!(classify_panic(payload.as_ref()), PanicClass::Other);
        let payload: Box<dyn Any + Send> = Box::new(42_u32);
        assert_eq!(classify_panic(payload.as_ref()), PanicClass::Other);
    }

    #[test]
    fn fault_plan_from_seed_is_deterministic() {
        let a = FaultPlan::from_seed(17);
        let b = FaultPlan::from_seed(17);
        assert_eq!(a, b);
        assert!(a.at_tick >= 1);
        // Seeds spread over phases and kinds.
        let plans: Vec<FaultPlan> = (0..64).map(FaultPlan::from_seed).collect();
        assert!(FaultPhase::ALL
            .iter()
            .all(|p| plans.iter().any(|pl| pl.phase == *p)));
        assert!(FaultKind::ALL
            .iter()
            .all(|k| plans.iter().any(|pl| pl.kind == *k)));
    }

    #[test]
    fn phase_names_roundtrip_through_parse() {
        for phase in FaultPhase::ALL {
            assert_eq!(FaultPhase::parse(phase.name()), Some(phase));
        }
        assert_eq!(FaultPhase::parse("store"), Some(FaultPhase::Store));
        assert_eq!(FaultPhase::parse("bogus"), None);
    }

    #[test]
    fn fault_plan_cluster_scoping() {
        let mut plan = FaultPlan::from_seed(1);
        plan.phase = FaultPhase::Summaries;
        plan.cluster = None;
        assert!(plan.applies_to(FaultPhase::Summaries, Some(3)));
        assert!(!plan.applies_to(FaultPhase::Query, Some(3)));
        plan.cluster = Some(2);
        assert!(plan.applies_to(FaultPhase::Summaries, Some(2)));
        assert!(!plan.applies_to(FaultPhase::Summaries, Some(3)));
        assert!(!plan.applies_to(FaultPhase::Summaries, None));
    }
}
