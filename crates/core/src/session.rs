//! The bootstrapping session: cascade configuration and setup (§2).
//!
//! A [`Session`] runs the cascaded clustering over a program:
//!
//! 1. Steensgaard's analysis partitions the pointers (disjoint cover);
//! 2. partitions larger than the *Andersen threshold* (the paper found 60
//!    empirically) are re-analyzed — restricted to their relevant
//!    statements — with Andersen's analysis (optionally with a One-Flow
//!    stage in between), breaking them into smaller clusters;
//! 3. queries and benchmarks then run per cluster through an
//!    [`crate::analyzer::Analyzer`].
//!
//! The session itself is immutable and `Sync`; per-thread analyzers carry
//! the caches.

use std::collections::{HashMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bootstrap_analyses::{andersen, oneflow, steensgaard, SteensgaardResult};
use bootstrap_ir::{CallGraph, FuncId, Loc, Program, Stmt, VarId};
use bootstrap_store::{StoreConfig, StoreCounters};
use parking_lot::RwLock;

use crate::analyzer::Analyzer;
use crate::budget::{AnalysisBudget, Outcome};
use crate::constraint::Cond;
use crate::cover::{AliasCover, Cluster, ClusterOrigin};
use crate::degrade::{
    classify_panic, DegradeReason, FaultPhase, FaultPlan, LadderAnswer, Precision,
};
use crate::engine::EngineCx;
use crate::fsci_cache::{FsciCacheStats, SharedFsciCache};
use crate::intern::{Interner, InternerStats};
use crate::persist::ClusterStore;
use crate::profile::{Phase, PhaseProfile, PhaseSnapshot};
use crate::relevant::{relevant_statements_indexed, RelevantIndex};
use crate::summary::Source;

/// Which analyses the cascade runs on oversized partitions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum MiddleStage {
    /// Steensgaard → Andersen (the paper's default cascade).
    #[default]
    None,
    /// Steensgaard → One-Flow → Andersen (the paper's suggested extension).
    OneFlow,
}

/// Session configuration.
#[derive(Clone, Debug)]
pub struct Config {
    /// Partitions larger than this are refined by the next cascade stage
    /// (the paper's empirical value: 60).
    pub andersen_threshold: usize,
    /// Maximum number of atoms per constraint conjunction before widening.
    pub cond_cap: usize,
    /// Treat two pointers both holding the entry value of the same
    /// variable as aliased. On by default: this is Theorem 5's notion of a
    /// common update-sequence origin, and it is what open programs
    /// (library entry points, uninitialized globals set elsewhere) need.
    pub alias_on_entry_garbage: bool,
    /// Treat two NULL pointers as aliased (off by default: NULL points to
    /// no object).
    pub alias_on_null: bool,
    /// Step budget for each oracle-initiated FSCI computation; exceeding
    /// it degrades to the Steensgaard fallback instead of failing.
    pub oracle_step_budget: u64,
    /// Step budget for each user query.
    pub query_step_budget: u64,
    /// Optional extra cascade stage.
    pub middle_stage: MiddleStage,
    /// Track branch literals along walks and weed out syntactically
    /// infeasible paths (the paper's path-sensitivity extension, §3).
    /// Off by default, matching the paper's path-insensitive core.
    pub path_sensitive: bool,
    /// Deterministic fault injection (`None` in production): the plan is
    /// armed onto the budget of its target phase, where it panics or
    /// exhausts the budget at the chosen tick. Used by the fuzz harness
    /// and CI to prove degradation stays sound and isolated.
    pub fault_plan: Option<FaultPlan>,
    /// Id capacity of the session's shared interning arena (`u32::MAX` in
    /// production). Tests shrink it to exercise the arena-full degradation
    /// and the drivers' doubled-capacity retry.
    pub interner_max_ids: u32,
    /// Optional persistent artifact store: cluster analyses consult it
    /// before solving and publish their results after, so repeat runs on
    /// unchanged code warm-start (`None` disables persistence).
    pub store: Option<StoreConfig>,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            andersen_threshold: 60,
            cond_cap: 8,
            alias_on_entry_garbage: true,
            alias_on_null: false,
            oracle_step_budget: 200_000,
            query_step_budget: 5_000_000,
            middle_stage: MiddleStage::None,
            path_sensitive: false,
            fault_plan: None,
            interner_max_ids: u32::MAX,
            store: None,
        }
    }
}

impl Config {
    /// A fresh budget for one user query, with any query-phase fault
    /// armed.
    pub fn query_budget(&self) -> AnalysisBudget {
        let mut b = AnalysisBudget::steps(self.query_step_budget);
        if let Some(plan) = self.fault_plan {
            if plan.applies_to(FaultPhase::Query, None) {
                b.arm_fault(plan.kind, plan.at_tick);
            }
        }
        b
    }

    /// A fresh budget for one oracle-initiated FSCI computation, with any
    /// oracle-phase fault armed.
    pub fn oracle_budget(&self) -> AnalysisBudget {
        let mut b = AnalysisBudget::steps(self.oracle_step_budget);
        if let Some(plan) = self.fault_plan {
            if plan.applies_to(FaultPhase::Oracle, None) {
                b.arm_fault(plan.kind, plan.at_tick);
            }
        }
        b
    }

    /// A fresh budget for one cluster's summary fixpoint, with any
    /// summaries-phase fault targeting this cluster slot armed.
    pub fn cluster_budget(&self, steps: u64, cluster_id: usize) -> AnalysisBudget {
        let mut b = AnalysisBudget::steps(steps);
        if let Some(plan) = self.fault_plan {
            if plan.applies_to(FaultPhase::Summaries, Some(cluster_id)) {
                b.arm_fault(plan.kind, plan.at_tick);
            }
        }
        b
    }
}

/// Per-request limits threaded into the tier-1 query budget on top of the
/// configured step budget: an absolute wall-clock deadline and a
/// cooperative cancellation flag (set when e.g. the requesting client
/// disconnects). Hitting either degrades the query down the precision
/// ladder — tiers 2 and 3 are cheap enough to always run — so a limited
/// query still always answers, just possibly coarsely.
#[derive(Clone, Default)]
pub struct QueryLimits {
    /// Absolute deadline; tightens (never loosens) the budget's clock.
    pub deadline: Option<Instant>,
    /// Cooperative cancel flag, checked at deadline-check cadence.
    pub cancel: Option<Arc<AtomicBool>>,
}

impl QueryLimits {
    /// No limits beyond the configured step budget.
    pub fn none() -> Self {
        Self::default()
    }

    /// Threads the limits into `budget`.
    pub fn apply(&self, budget: &mut AnalysisBudget) {
        if let Some(d) = self.deadline {
            budget.tighten_deadline(d);
        }
        if let Some(flag) = &self.cancel {
            budget.set_cancel_flag(Arc::clone(flag));
        }
    }

    /// `true` once the cancel flag has been raised.
    pub fn cancelled(&self) -> bool {
        self.cancel
            .as_ref()
            .is_some_and(|f| f.load(Ordering::Relaxed))
    }
}

/// Wall-clock cost of the cascade stages (Table 1 columns 4–5).
#[derive(Clone, Copy, Debug, Default)]
pub struct CascadeTimings {
    /// Time for Steensgaard's analysis + partitioning.
    pub steensgaard: Duration,
    /// Time for the bootstrapped refinement (Andersen / One-Flow) of
    /// oversized partitions.
    pub clustering: Duration,
}

/// The full-precision answer set recorded for one `(pointer, location)`
/// query: the value sources and the path condition each holds under.
pub(crate) type QuerySources = Vec<(Source, Cond)>;
/// One recorded query keyed by its `(pointer, location)` pair.
pub(crate) type QueryRecord = ((VarId, Loc), QuerySources);

/// An immutable analysis session over one program.
pub struct Session<'p> {
    program: &'p Program,
    config: Config,
    steens: SteensgaardResult,
    cg: CallGraph,
    index: RelevantIndex,
    cover: AliasCover,
    pointers: Vec<VarId>,
    callers_of: HashMap<FuncId, Vec<Loc>>,
    alias_partitions: HashMap<bootstrap_analyses::ClassId, Vec<VarId>>,
    timings: CascadeTimings,
    /// Clean FSCI results, shared by every analyzer of this session (the
    /// session stays logically immutable: the cache is a memo table over a
    /// deterministic function of the program).
    fsci_cache: SharedFsciCache,
    /// The hash-consing arena every engine of this session interns into —
    /// shared across LPT workers like the FSCI cache, so conditions and
    /// memoized conjunctions computed by one cluster are reused by all.
    interner: Arc<Interner>,
    /// Per-phase wall/step counters (see [`Session::phase_stats`]).
    profile: PhaseProfile,
    /// Lazily computed tier-2 fallbacks: per alias partition, an Andersen
    /// points-to result over the partition's relevant slice. Shared across
    /// analyzers like the FSCI cache (memo of a deterministic function).
    andersen_tiers: RwLock<HashMap<bootstrap_analyses::ClassId, Arc<AndersenTier>>>,
    /// Aggregated Andersen solver work counters: the cover-build runs at
    /// construction plus every lazily built tier-2 slice solve since.
    solver_stats: RwLock<andersen::SolverStats>,
    /// The persistent artifact store, when [`Config::store`] is set.
    /// Dropping the session flushes its lifetime counters to disk.
    store: Option<ClusterStore>,
    /// Full-precision FSCS answers installed from a store hit:
    /// [`Session::query_at_loc`] returns these without walking.
    warm_queries: RwLock<HashMap<(VarId, Loc), Arc<QuerySources>>>,
    /// Cold full-precision answers recorded for the next publish.
    pending_queries: RwLock<HashMap<(VarId, Loc), QuerySources>>,
}

/// Cached tier-2 artifacts for one alias partition: the slice Andersen
/// result plus the slice's variable set `V_P` (FSCS walks never leave the
/// slice, so `V_P` bounds their `EntryVar` terminals).
struct AndersenTier {
    result: andersen::AndersenResult,
    slice_vars: Vec<VarId>,
}

impl<'p> Session<'p> {
    /// Runs the cascade over `program`.
    ///
    /// Programs with indirect calls should be devirtualized first
    /// ([`bootstrap_analyses::steensgaard::resolve_and_devirtualize`]);
    /// remaining indirect calls are treated as no-ops by the engine.
    pub fn new(program: &'p Program, config: Config) -> Self {
        let t0 = Instant::now();
        let steens = steensgaard::analyze(program);
        let steensgaard_time = t0.elapsed();

        let cg = CallGraph::build(program);
        let index = RelevantIndex::build(program, &steens);
        let pointers: Vec<VarId> = program
            .var_ids()
            .filter(|v| program.var(*v).is_pointer())
            .collect();
        let mut callers_of: HashMap<FuncId, Vec<Loc>> = HashMap::new();
        for func in program.functions() {
            for (loc, target) in cg.call_sites_in(func.id()) {
                callers_of.entry(*target).or_default().push(*loc);
            }
        }

        let t1 = Instant::now();
        let alias_partitions: HashMap<bootstrap_analyses::ClassId, Vec<VarId>> =
            steens.alias_partitions(program).into_iter().collect();
        let (cover, cover_solver_stats) =
            build_cover(program, &steens, &index, &config, &alias_partitions);
        let clustering_time = t1.elapsed();

        let interner = Arc::new(Interner::with_max_ids(
            config.cond_cap,
            config.interner_max_ids,
        ));
        let profile = PhaseProfile::new();
        profile.record(Phase::Steensgaard, steensgaard_time, 0);
        profile.record(Phase::Andersen, clustering_time, 0);
        let store = config
            .store
            .clone()
            .and_then(|sc| ClusterStore::open(sc, &config, program));
        Self {
            program,
            config,
            steens,
            cg,
            index,
            cover,
            pointers,
            callers_of,
            alias_partitions,
            timings: CascadeTimings {
                steensgaard: steensgaard_time,
                clustering: clustering_time,
            },
            fsci_cache: SharedFsciCache::new(),
            interner,
            profile,
            andersen_tiers: RwLock::new(HashMap::new()),
            solver_stats: RwLock::new(cover_solver_stats),
            store,
            warm_queries: RwLock::new(HashMap::new()),
            pending_queries: RwLock::new(HashMap::new()),
        }
    }

    /// The program under analysis.
    pub fn program(&self) -> &'p Program {
        self.program
    }

    /// The configuration.
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// The Steensgaard result (partitions + hierarchy).
    pub fn steens(&self) -> &SteensgaardResult {
        &self.steens
    }

    /// The call graph.
    pub fn callgraph(&self) -> &CallGraph {
        &self.cg
    }

    /// The bootstrapped cover the session was configured to build.
    pub fn cover(&self) -> &AliasCover {
        &self.cover
    }

    /// All pointer-typed variables (the paper's "# pointers").
    pub fn pointers(&self) -> &[VarId] {
        &self.pointers
    }

    /// Wall-clock cost of the cascade stages.
    pub fn timings(&self) -> CascadeTimings {
        self.timings
    }

    /// Call sites that invoke `f`.
    pub fn callers_of(&self, f: FuncId) -> &[Loc] {
        self.callers_of.get(&f).map(Vec::as_slice).unwrap_or(&[])
    }

    /// A fresh caching query context (one per thread). All analyzers of a
    /// session consult the session's shared FSCI cache before computing.
    pub fn analyzer(&self) -> Analyzer<'_> {
        Analyzer::new(self)
    }

    /// A fresh analyzer whose engines intern into `arena` instead of the
    /// session's shared interner. Cluster drivers use this to retry an
    /// arena-full cluster with a doubled-capacity private arena without
    /// disturbing sibling workers that keep the shared one.
    pub fn analyzer_with_arena(&self, arena: Arc<Interner>) -> Analyzer<'_> {
        Analyzer::with_arena(self, arena)
    }

    /// The value sources of `p` just before `loc`, down a precision
    /// ladder that always answers.
    ///
    /// This is the per-statement query surface client checkers batch their
    /// site queries through. Tier 1 is the flow- and context-sensitive
    /// walk (a fresh query budget, Algorithm 3 at an arbitrary program
    /// point, sources filtered to constraint-satisfiable tuples). If it
    /// runs out of budget, overflows the arena, or panics, the query falls
    /// to tier 2 — flow-insensitive Andersen points-to over the alias
    /// partition's relevant slice — and, should even that fail, to tier 3,
    /// the raw Steensgaard pointee partition. Each coarser tier is a sound
    /// over-approximation of the tiers above it, so the answer is always a
    /// superset of the true source set; [`LadderAnswer::precision`] tags
    /// which tier answered and [`LadderAnswer::reason`] why precision was
    /// lost. Pass the same `az` for all queries of one batch so the
    /// per-thread memo and the shared FSCI cache are reused across sites.
    pub fn query_at_loc(&self, az: &Analyzer<'_>, p: VarId, loc: Loc) -> LadderAnswer {
        self.query_at_loc_limited(az, p, loc, &QueryLimits::none())
    }

    /// [`Session::query_at_loc`] with per-request [`QueryLimits`] (a wall
    /// deadline and/or a cancellation flag) threaded into the tier-1
    /// budget. The analysis daemon uses this so one slow request degrades
    /// to a coarser tier instead of wedging a worker, and a disconnected
    /// client's in-flight work is abandoned at the next budget checkpoint.
    pub fn query_at_loc_limited(
        &self,
        az: &Analyzer<'_>,
        p: VarId,
        loc: Loc,
        limits: &QueryLimits,
    ) -> LadderAnswer {
        let reason = if let Some(class) = az.poison_class() {
            // A previous query panicked mid-walk on this analyzer: its
            // engine and memo state are suspect, so FSCS answers from it
            // can no longer be trusted. Degrade until it is replaced.
            DegradeReason::Panicked { class }
        } else if limits.cancelled() {
            DegradeReason::Cancelled
        } else {
            let mut budget = self.config.query_budget();
            limits.apply(&mut budget);
            let t0 = Instant::now();
            let attempt = catch_unwind(AssertUnwindSafe(|| {
                // Warm path: a store hit for this pointer's partition may
                // have installed the recorded answer (near-zero steps).
                if let Some(warm) = az.warm_sources(p, loc) {
                    return Outcome::Done(warm);
                }
                az.sources(p, loc, &mut budget).map(|s| {
                    let s = az.satisfiable_sources(s);
                    self.record_query(p, loc, &s);
                    s
                })
            }));
            self.profile
                .record(Phase::Fscs, t0.elapsed(), budget.steps_used());
            match attempt {
                Ok(Outcome::Done(sources)) => return LadderAnswer::fscs(sources),
                Ok(Outcome::Degraded(r)) => r,
                Err(payload) => {
                    let class = classify_panic(payload.as_ref());
                    az.poison(class);
                    DegradeReason::Panicked { class }
                }
            }
        };
        // Tier 2. The Andersen fallback is plain fixpoint arithmetic and
        // should never panic, but the whole point of the ladder is to not
        // have to trust that: catch and fall through to tier 3, which is
        // pure table lookups over results computed at session build time.
        let t0 = Instant::now();
        let tier2 = catch_unwind(AssertUnwindSafe(|| self.andersen_sources(p)));
        self.profile.record(Phase::Andersen, t0.elapsed(), 0);
        if let Ok(sources) = tier2 {
            return LadderAnswer {
                sources,
                precision: Precision::Andersen,
                reason: Some(reason),
            };
        }
        LadderAnswer {
            sources: self.steensgaard_sources(p),
            precision: Precision::Steensgaard,
            reason: Some(reason),
        }
    }

    /// The variable set a degraded tier answers over: the alias partition
    /// of `p` (every pointer that could share update sequences with it),
    /// falling back to `p`'s value class, then to `p` alone.
    fn tier_members(&self, p: VarId) -> Vec<VarId> {
        let key = self.steens.partition_key(p);
        let members = self.partition_members(key);
        if !members.is_empty() {
            return members.to_vec();
        }
        let class = self.steens.members(key);
        if class.is_empty() {
            vec![p]
        } else {
            class.to_vec()
        }
    }

    /// Tier-2 sources: flow-insensitive Andersen points-to over the alias
    /// partition's relevant slice, unioned across the partition.
    ///
    /// Soundness (superset of any tier-1 answer): every `Addr` terminal of
    /// an FSCS walk comes from a relevant address-taking statement whose
    /// destination is in `p`'s alias partition, and Andersen over the same
    /// slice records exactly those assignments (plus flow-insensitive
    /// propagation); `Null` is included unconditionally, and `EntryVar` is
    /// included for every variable of the slice `V_P` — a walk never
    /// leaves its relevant slice, so any entry value it can bottom out in
    /// (including values *stored into* a queried heap object, which sit
    /// outside the alias partition) belongs to a slice variable.
    fn andersen_sources(&self, p: VarId) -> Vec<(Source, Cond)> {
        let key = self.steens.partition_key(p);
        let members = self.tier_members(p);
        let tier = self.andersen_tier(key, &members);
        let mut addrs: Vec<VarId> = members
            .iter()
            .flat_map(|&m| tier.result.points_to_vars(m))
            .collect();
        addrs.sort_unstable();
        addrs.dedup();
        let mut sources: Vec<(Source, Cond)> = addrs
            .into_iter()
            .map(|o| (Source::Addr(o), Cond::top()))
            .collect();
        sources.push((Source::Null, Cond::top()));
        sources.extend(members.iter().map(|&m| (Source::EntryVar(m), Cond::top())));
        sources.extend(
            tier.slice_vars
                .iter()
                .map(|&v| (Source::EntryVar(v), Cond::top())),
        );
        sources.sort();
        sources.dedup();
        sources
    }

    /// Tier-3 sources: the Steensgaard pointee partition of `p` (the
    /// coarsest sound tier — pure lookups into session-build results).
    /// With no slice at hand, `EntryVar` coverage widens to every program
    /// variable.
    fn steensgaard_sources(&self, p: VarId) -> Vec<(Source, Cond)> {
        let mut sources: Vec<(Source, Cond)> = self
            .steens
            .points_to_vars(p)
            .iter()
            .map(|&o| (Source::Addr(o), Cond::top()))
            .collect();
        sources.push((Source::Null, Cond::top()));
        sources.extend(
            self.program
                .var_ids()
                .map(|v| (Source::EntryVar(v), Cond::top())),
        );
        sources.sort();
        sources.dedup();
        sources
    }

    /// The cached tier-2 Andersen result for one alias partition.
    fn andersen_tier(
        &self,
        key: bootstrap_analyses::ClassId,
        members: &[VarId],
    ) -> Arc<AndersenTier> {
        if let Some(r) = self.andersen_tiers.read().get(&key) {
            return Arc::clone(r);
        }
        let t0 = Instant::now();
        let rel = relevant_statements_indexed(self.program, &self.steens, &self.index, members);
        let stmts: Vec<&Stmt> = rel.stmts().map(|loc| self.program.stmt_at(loc)).collect();
        let (result, solver_stats) = andersen::analyze_stmts_with_stats(
            self.program.var_count(),
            stmts,
            andersen::SolverOptions::default(),
        );
        let an = Arc::new(AndersenTier {
            result,
            slice_vars: rel.vars().collect(),
        });
        self.solver_stats.write().absorb(&solver_stats);
        self.profile.record(Phase::Andersen, t0.elapsed(), 0);
        Arc::clone(self.andersen_tiers.write().entry(key).or_insert(an))
    }

    /// The session-wide FSCI cache (clean top-level results only).
    pub(crate) fn fsci_cache(&self) -> &SharedFsciCache {
        &self.fsci_cache
    }

    /// The persistent cluster store, when configured.
    pub(crate) fn cluster_store(&self) -> Option<&ClusterStore> {
        self.store.as_ref()
    }

    /// Whole-program content hash — the persistent store's cross-run
    /// validity gate. Stable across sessions over identical program text.
    pub fn program_content_hash(&self) -> u64 {
        crate::persist::program_hash(self.program)
    }

    /// Arms cross-epoch store adoption: persisted entries recorded under
    /// `prev_program_hash` are accepted for clusters whose members all
    /// lie in `clean` alias partitions (as proven by
    /// [`crate::incremental::diff_and_adopt`]), instead of being
    /// invalidated by the whole-program-hash gate. Returns `false` (and
    /// does nothing) when no store is configured.
    pub fn adopt_previous_epoch(
        &self,
        prev_program_hash: u64,
        clean: HashSet<bootstrap_analyses::ClassId>,
    ) -> bool {
        match &self.store {
            Some(s) => {
                s.adopt(crate::persist::Adoption {
                    prev_program_hash,
                    clean,
                });
                true
            }
            None => false,
        }
    }

    /// This run's store hit/miss/invalidated counters (all zero when no
    /// store is configured).
    pub fn store_counters(&self) -> StoreCounters {
        self.store
            .as_ref()
            .map(|s| s.counters())
            .unwrap_or_default()
    }

    /// The store-installed full-precision answer for `(p, loc)`, if any.
    pub(crate) fn warm_query(&self, p: VarId, loc: Loc) -> Option<Vec<(Source, Cond)>> {
        self.warm_queries
            .read()
            .get(&(p, loc))
            .map(|s| s.as_ref().clone())
    }

    /// Installs a store-loaded full-precision answer (consult path).
    pub(crate) fn install_warm_query(&self, p: VarId, loc: Loc, sources: Vec<(Source, Cond)>) {
        self.warm_queries
            .write()
            .insert((p, loc), Arc::new(sources));
    }

    /// Records a cold full-precision answer for the next publish. A no-op
    /// without a store — the map would only grow unread.
    pub(crate) fn record_query(&self, p: VarId, loc: Loc, sources: &[(Source, Cond)]) {
        if self.store.is_none() {
            return;
        }
        self.pending_queries
            .write()
            .insert((p, loc), sources.to_vec());
    }

    /// A sorted snapshot of the recorded cold answers (publish path).
    pub(crate) fn pending_queries_snapshot(&self) -> Vec<QueryRecord> {
        let mut v: Vec<_> = self
            .pending_queries
            .read()
            .iter()
            .map(|(k, s)| (*k, s.clone()))
            .collect();
        v.sort_by_key(|(k, _)| *k);
        v
    }

    /// Hit/miss/entry counters of the shared FSCI points-to cache.
    pub fn fsci_cache_stats(&self) -> FsciCacheStats {
        self.fsci_cache.stats()
    }

    /// The session-wide hash-consing arena.
    pub(crate) fn interner(&self) -> &Arc<Interner> {
        &self.interner
    }

    /// The session-wide phase profile (engines record into it).
    pub(crate) fn profile(&self) -> &PhaseProfile {
        &self.profile
    }

    /// Entry/hit/miss counters of the shared condition interner; hits are
    /// structural clones and conjunction recomputations avoided.
    pub fn interner_stats(&self) -> InternerStats {
        self.interner.stats()
    }

    /// Aggregated Andersen solver work counters: worklist pops (productive
    /// and stale), copy edges, cycles collapsed offline/online, wave
    /// rounds, and edges pruned — summed over the cover-build solves and
    /// every tier-2 slice solve run so far.
    pub fn solver_stats(&self) -> andersen::SolverStats {
        *self.solver_stats.read()
    }

    /// Accumulated per-phase wall time, steps, and invocation counts for
    /// the cascade (Steensgaard, Andersen refinement, relevant slicing,
    /// FSCS summarization). Phase costs grow as analyzers run; the
    /// Steensgaard and Andersen rows are recorded once at construction.
    pub fn phase_stats(&self) -> PhaseSnapshot {
        self.profile.snapshot()
    }

    pub(crate) fn engine_cx(&self) -> EngineCx<'_> {
        EngineCx {
            program: self.program,
            steens: &self.steens,
            cg: &self.cg,
            index: &self.index,
        }
    }

    /// The prebuilt Algorithm 1 index.
    pub fn relevant_index(&self) -> &RelevantIndex {
        &self.index
    }

    /// The members of the Steensgaard alias partition with the given key
    /// (see [`SteensgaardResult::partition_key`]).
    pub fn partition_members(&self, key: bootstrap_analyses::ClassId) -> &[VarId] {
        self.alias_partitions
            .get(&key)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The pure Steensgaard cover: one cluster per alias partition
    /// (Table 1 columns 7–9 run FSCS on this cover).
    pub fn steensgaard_cover(&self) -> AliasCover {
        let mut keys: Vec<_> = self.alias_partitions.keys().copied().collect();
        keys.sort();
        let clusters = keys
            .into_iter()
            .map(|key| {
                Cluster::new(
                    0,
                    ClusterOrigin::Steensgaard(key),
                    self.alias_partitions[&key].clone(),
                )
            })
            .collect();
        AliasCover::new(clusters)
    }

    /// The degenerate whole-program cover (Table 1 column 6's baseline).
    pub fn whole_cover(&self) -> AliasCover {
        AliasCover::new(vec![Cluster::new(
            0,
            ClusterOrigin::WholeProgram,
            self.pointers.clone(),
        )])
    }
}

/// Builds the configured bootstrapped cover, plus the aggregated solver
/// counters of every Andersen refinement run along the way.
fn build_cover(
    program: &Program,
    steens: &SteensgaardResult,
    index: &RelevantIndex,
    config: &Config,
    alias_partitions: &HashMap<bootstrap_analyses::ClassId, Vec<VarId>>,
) -> (AliasCover, andersen::SolverStats) {
    let oneflow_result = match config.middle_stage {
        MiddleStage::OneFlow => Some(oneflow::analyze(program)),
        MiddleStage::None => None,
    };
    let mut keys: Vec<_> = alias_partitions.keys().copied().collect();
    keys.sort();
    let mut clusters = Vec::new();
    let mut solver_stats = andersen::SolverStats::default();
    for class in keys {
        let pointer_members: Vec<VarId> = alias_partitions[&class].clone();
        if pointer_members.len() <= config.andersen_threshold {
            clusters.push(Cluster::new(
                0,
                ClusterOrigin::Steensgaard(class),
                pointer_members,
            ));
            continue;
        }
        // Oversized: cascade. Optionally One-Flow first.
        let groups: Vec<(ClusterOrigin, Vec<VarId>)> = match &oneflow_result {
            Some(ofr) => ofr
                .clusters(&pointer_members)
                .into_iter()
                .map(|ms| {
                    (
                        ClusterOrigin::OneFlow {
                            partition: class,
                            object: None,
                        },
                        ms,
                    )
                })
                .collect(),
            None => vec![(ClusterOrigin::Steensgaard(class), pointer_members)],
        };
        for (origin, group) in groups {
            if group.len() <= config.andersen_threshold {
                clusters.push(Cluster::new(0, origin, group));
                continue;
            }
            // Andersen, bootstrapped: restricted to the group's relevant
            // statements.
            let rel = relevant_statements_indexed(program, steens, index, &group);
            let stmts: Vec<&Stmt> = rel.stmts().map(|loc| program.stmt_at(loc)).collect();
            let (an, run_stats) = andersen::analyze_stmts_with_stats(
                program.var_count(),
                stmts,
                andersen::SolverOptions::default(),
            );
            solver_stats.absorb(&run_stats);
            for ac in an.clusters(&group) {
                clusters.push(Cluster::new(
                    0,
                    ClusterOrigin::Andersen {
                        partition: class,
                        object: ac.object,
                    },
                    ac.members,
                ));
            }
        }
    }
    (AliasCover::new(clusters), solver_stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bootstrap_ir::parse_program;

    #[test]
    fn small_partitions_stay_steensgaard() {
        let p = parse_program(
            "int a; int b; int *x; int *y;
             void main() { x = &a; y = &b; }",
        )
        .unwrap();
        let s = Session::new(&p, Config::default());
        assert!(s
            .cover()
            .clusters()
            .iter()
            .all(|c| matches!(c.origin, ClusterOrigin::Steensgaard(_))));
        assert!(s.cover().is_disjoint());
        assert!(s.cover().covers(s.pointers()));
    }

    #[test]
    fn oversized_partition_is_refined_by_andersen() {
        // One big partition: hub absorbs many pointers, each pointing to a
        // distinct object — Andersen splits them apart.
        let mut src = String::from("int *hub;\n");
        for i in 0..12 {
            src.push_str(&format!("int o{i}; int *p{i};\n"));
        }
        src.push_str("void main() {\n");
        for i in 0..12 {
            src.push_str(&format!("p{i} = &o{i};\nhub = p{i};\n"));
        }
        src.push_str("}\n");
        let p = parse_program(&src).unwrap();
        let config = Config {
            andersen_threshold: 4,
            ..Config::default()
        };
        let s = Session::new(&p, config);
        let andersen_clusters = s
            .cover()
            .clusters()
            .iter()
            .filter(|c| matches!(c.origin, ClusterOrigin::Andersen { .. }))
            .count();
        assert!(andersen_clusters > 1, "expected Andersen refinement");
        assert!(s.cover().covers(s.pointers()));
        // Andersen clusters are smaller than the original partition.
        assert!(s.cover().max_cluster_size() < s.steensgaard_cover().max_cluster_size());
    }

    #[test]
    fn whole_cover_is_single_cluster() {
        let p = parse_program("int a; int *x; void main() { x = &a; }").unwrap();
        let s = Session::new(&p, Config::default());
        let whole = s.whole_cover();
        assert_eq!(whole.len(), 1);
        assert_eq!(whole.clusters()[0].members.len(), s.pointers().len());
    }

    #[test]
    fn oneflow_middle_stage_builds_valid_cover() {
        let mut src = String::from("int *hub;\n");
        for i in 0..12 {
            src.push_str(&format!("int o{i}; int *p{i};\n"));
        }
        src.push_str("void main() {\n");
        for i in 0..12 {
            src.push_str(&format!("p{i} = &o{i};\nhub = p{i};\n"));
        }
        src.push_str("}\n");
        let p = parse_program(&src).unwrap();
        let config = Config {
            andersen_threshold: 4,
            middle_stage: MiddleStage::OneFlow,
            ..Config::default()
        };
        let s = Session::new(&p, config);
        assert!(s.cover().covers(s.pointers()));
        assert!(s.cover().clusters().iter().any(|c| matches!(
            c.origin,
            ClusterOrigin::OneFlow { .. }
        ) || matches!(
            c.origin,
            ClusterOrigin::Andersen { .. }
        )));
    }

    #[test]
    fn callers_map_lists_call_sites() {
        let p = parse_program("void g() { } void main() { g(); g(); }").unwrap();
        let s = Session::new(&p, Config::default());
        let g = p.func_named("g").unwrap();
        assert_eq!(s.callers_of(g).len(), 2);
        assert!(s.callers_of(p.func_named("main").unwrap()).is_empty());
    }

    #[test]
    fn timings_are_recorded() {
        let p = parse_program("int a; int *x; void main() { x = &a; }").unwrap();
        let s = Session::new(&p, Config::default());
        // Just ensure they are populated (non-panicking access).
        let _ = s.timings().steensgaard;
        let _ = s.timings().clustering;
    }
}
