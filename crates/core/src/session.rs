//! The bootstrapping session: cascade configuration and setup (§2).
//!
//! A [`Session`] runs the cascaded clustering over a program:
//!
//! 1. Steensgaard's analysis partitions the pointers (disjoint cover);
//! 2. partitions larger than the *Andersen threshold* (the paper found 60
//!    empirically) are re-analyzed — restricted to their relevant
//!    statements — with Andersen's analysis (optionally with a One-Flow
//!    stage in between), breaking them into smaller clusters;
//! 3. queries and benchmarks then run per cluster through an
//!    [`crate::analyzer::Analyzer`].
//!
//! The session itself is immutable and `Sync`; per-thread analyzers carry
//! the caches.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use bootstrap_analyses::{andersen, oneflow, steensgaard, SteensgaardResult};
use bootstrap_ir::{CallGraph, FuncId, Loc, Program, Stmt, VarId};

use crate::analyzer::Analyzer;
use crate::budget::{AnalysisBudget, Outcome};
use crate::constraint::Cond;
use crate::cover::{AliasCover, Cluster, ClusterOrigin};
use crate::engine::EngineCx;
use crate::fsci_cache::{FsciCacheStats, SharedFsciCache};
use crate::intern::{Interner, InternerStats};
use crate::profile::{Phase, PhaseProfile, PhaseSnapshot};
use crate::relevant::{relevant_statements_indexed, RelevantIndex};
use crate::summary::Source;

/// Which analyses the cascade runs on oversized partitions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum MiddleStage {
    /// Steensgaard → Andersen (the paper's default cascade).
    #[default]
    None,
    /// Steensgaard → One-Flow → Andersen (the paper's suggested extension).
    OneFlow,
}

/// Session configuration.
#[derive(Clone, Debug)]
pub struct Config {
    /// Partitions larger than this are refined by the next cascade stage
    /// (the paper's empirical value: 60).
    pub andersen_threshold: usize,
    /// Maximum number of atoms per constraint conjunction before widening.
    pub cond_cap: usize,
    /// Treat two pointers both holding the entry value of the same
    /// variable as aliased. On by default: this is Theorem 5's notion of a
    /// common update-sequence origin, and it is what open programs
    /// (library entry points, uninitialized globals set elsewhere) need.
    pub alias_on_entry_garbage: bool,
    /// Treat two NULL pointers as aliased (off by default: NULL points to
    /// no object).
    pub alias_on_null: bool,
    /// Step budget for each oracle-initiated FSCI computation; exceeding
    /// it degrades to the Steensgaard fallback instead of failing.
    pub oracle_step_budget: u64,
    /// Step budget for each user query.
    pub query_step_budget: u64,
    /// Optional extra cascade stage.
    pub middle_stage: MiddleStage,
    /// Track branch literals along walks and weed out syntactically
    /// infeasible paths (the paper's path-sensitivity extension, §3).
    /// Off by default, matching the paper's path-insensitive core.
    pub path_sensitive: bool,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            andersen_threshold: 60,
            cond_cap: 8,
            alias_on_entry_garbage: true,
            alias_on_null: false,
            oracle_step_budget: 200_000,
            query_step_budget: 5_000_000,
            middle_stage: MiddleStage::None,
            path_sensitive: false,
        }
    }
}

impl Config {
    /// A fresh budget for one user query.
    pub fn query_budget(&self) -> AnalysisBudget {
        AnalysisBudget::steps(self.query_step_budget)
    }
}

/// Wall-clock cost of the cascade stages (Table 1 columns 4–5).
#[derive(Clone, Copy, Debug, Default)]
pub struct CascadeTimings {
    /// Time for Steensgaard's analysis + partitioning.
    pub steensgaard: Duration,
    /// Time for the bootstrapped refinement (Andersen / One-Flow) of
    /// oversized partitions.
    pub clustering: Duration,
}

/// An immutable analysis session over one program.
pub struct Session<'p> {
    program: &'p Program,
    config: Config,
    steens: SteensgaardResult,
    cg: CallGraph,
    index: RelevantIndex,
    cover: AliasCover,
    pointers: Vec<VarId>,
    callers_of: HashMap<FuncId, Vec<Loc>>,
    alias_partitions: HashMap<bootstrap_analyses::ClassId, Vec<VarId>>,
    timings: CascadeTimings,
    /// Clean FSCI results, shared by every analyzer of this session (the
    /// session stays logically immutable: the cache is a memo table over a
    /// deterministic function of the program).
    fsci_cache: SharedFsciCache,
    /// The hash-consing arena every engine of this session interns into —
    /// shared across LPT workers like the FSCI cache, so conditions and
    /// memoized conjunctions computed by one cluster are reused by all.
    interner: Arc<Interner>,
    /// Per-phase wall/step counters (see [`Session::phase_stats`]).
    profile: PhaseProfile,
}

impl<'p> Session<'p> {
    /// Runs the cascade over `program`.
    ///
    /// Programs with indirect calls should be devirtualized first
    /// ([`bootstrap_analyses::steensgaard::resolve_and_devirtualize`]);
    /// remaining indirect calls are treated as no-ops by the engine.
    pub fn new(program: &'p Program, config: Config) -> Self {
        let t0 = Instant::now();
        let steens = steensgaard::analyze(program);
        let steensgaard_time = t0.elapsed();

        let cg = CallGraph::build(program);
        let index = RelevantIndex::build(program, &steens);
        let pointers: Vec<VarId> = program
            .var_ids()
            .filter(|v| program.var(*v).is_pointer())
            .collect();
        let mut callers_of: HashMap<FuncId, Vec<Loc>> = HashMap::new();
        for func in program.functions() {
            for (loc, target) in cg.call_sites_in(func.id()) {
                callers_of.entry(*target).or_default().push(*loc);
            }
        }

        let t1 = Instant::now();
        let alias_partitions: HashMap<bootstrap_analyses::ClassId, Vec<VarId>> =
            steens.alias_partitions(program).into_iter().collect();
        let cover = build_cover(program, &steens, &index, &config, &alias_partitions);
        let clustering_time = t1.elapsed();

        let interner = Arc::new(Interner::new(config.cond_cap));
        let profile = PhaseProfile::new();
        profile.record(Phase::Steensgaard, steensgaard_time, 0);
        profile.record(Phase::Andersen, clustering_time, 0);
        Self {
            program,
            config,
            steens,
            cg,
            index,
            cover,
            pointers,
            callers_of,
            alias_partitions,
            timings: CascadeTimings {
                steensgaard: steensgaard_time,
                clustering: clustering_time,
            },
            fsci_cache: SharedFsciCache::new(),
            interner,
            profile,
        }
    }

    /// The program under analysis.
    pub fn program(&self) -> &'p Program {
        self.program
    }

    /// The configuration.
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// The Steensgaard result (partitions + hierarchy).
    pub fn steens(&self) -> &SteensgaardResult {
        &self.steens
    }

    /// The call graph.
    pub fn callgraph(&self) -> &CallGraph {
        &self.cg
    }

    /// The bootstrapped cover the session was configured to build.
    pub fn cover(&self) -> &AliasCover {
        &self.cover
    }

    /// All pointer-typed variables (the paper's "# pointers").
    pub fn pointers(&self) -> &[VarId] {
        &self.pointers
    }

    /// Wall-clock cost of the cascade stages.
    pub fn timings(&self) -> CascadeTimings {
        self.timings
    }

    /// Call sites that invoke `f`.
    pub fn callers_of(&self, f: FuncId) -> &[Loc] {
        self.callers_of.get(&f).map(Vec::as_slice).unwrap_or(&[])
    }

    /// A fresh caching query context (one per thread). All analyzers of a
    /// session consult the session's shared FSCI cache before computing.
    pub fn analyzer(&self) -> Analyzer<'_> {
        Analyzer::new(self)
    }

    /// The flow- and context-sensitive value sources of `p` just before
    /// `loc`, filtered to constraint-satisfiable tuples.
    ///
    /// This is the per-statement query surface client checkers batch their
    /// site queries through: each call gets a fresh query budget, runs
    /// Algorithm 3 at an arbitrary program point (not just function exits),
    /// and weeds out sources whose guarding constraints the FSCI oracle
    /// refutes — the must-alias strong updates that suppress false
    /// positives. Pass the same `az` for all queries of one batch so the
    /// per-thread memo and the shared FSCI cache are reused across sites.
    pub fn query_at_loc(
        &self,
        az: &Analyzer<'_>,
        p: VarId,
        loc: Loc,
    ) -> Outcome<Vec<(Source, Cond)>> {
        let mut budget = self.config.query_budget();
        let t0 = Instant::now();
        let out = az.sources(p, loc, &mut budget);
        self.profile
            .record(Phase::Fscs, t0.elapsed(), budget.steps_used());
        match out {
            Outcome::Done(sources) => Outcome::Done(az.satisfiable_sources(sources)),
            Outcome::TimedOut => Outcome::TimedOut,
        }
    }

    /// The session-wide FSCI cache (clean top-level results only).
    pub(crate) fn fsci_cache(&self) -> &SharedFsciCache {
        &self.fsci_cache
    }

    /// Hit/miss/entry counters of the shared FSCI points-to cache.
    pub fn fsci_cache_stats(&self) -> FsciCacheStats {
        self.fsci_cache.stats()
    }

    /// The session-wide hash-consing arena.
    pub(crate) fn interner(&self) -> &Arc<Interner> {
        &self.interner
    }

    /// The session-wide phase profile (engines record into it).
    pub(crate) fn profile(&self) -> &PhaseProfile {
        &self.profile
    }

    /// Entry/hit/miss counters of the shared condition interner; hits are
    /// structural clones and conjunction recomputations avoided.
    pub fn interner_stats(&self) -> InternerStats {
        self.interner.stats()
    }

    /// Accumulated per-phase wall time, steps, and invocation counts for
    /// the cascade (Steensgaard, Andersen refinement, relevant slicing,
    /// FSCS summarization). Phase costs grow as analyzers run; the
    /// Steensgaard and Andersen rows are recorded once at construction.
    pub fn phase_stats(&self) -> PhaseSnapshot {
        self.profile.snapshot()
    }

    pub(crate) fn engine_cx(&self) -> EngineCx<'_> {
        EngineCx {
            program: self.program,
            steens: &self.steens,
            cg: &self.cg,
            index: &self.index,
        }
    }

    /// The prebuilt Algorithm 1 index.
    pub fn relevant_index(&self) -> &RelevantIndex {
        &self.index
    }

    /// The members of the Steensgaard alias partition with the given key
    /// (see [`SteensgaardResult::partition_key`]).
    pub fn partition_members(&self, key: bootstrap_analyses::ClassId) -> &[VarId] {
        self.alias_partitions
            .get(&key)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The pure Steensgaard cover: one cluster per alias partition
    /// (Table 1 columns 7–9 run FSCS on this cover).
    pub fn steensgaard_cover(&self) -> AliasCover {
        let mut keys: Vec<_> = self.alias_partitions.keys().copied().collect();
        keys.sort();
        let clusters = keys
            .into_iter()
            .map(|key| {
                Cluster::new(
                    0,
                    ClusterOrigin::Steensgaard(key),
                    self.alias_partitions[&key].clone(),
                )
            })
            .collect();
        AliasCover::new(clusters)
    }

    /// The degenerate whole-program cover (Table 1 column 6's baseline).
    pub fn whole_cover(&self) -> AliasCover {
        AliasCover::new(vec![Cluster::new(
            0,
            ClusterOrigin::WholeProgram,
            self.pointers.clone(),
        )])
    }
}

/// Builds the configured bootstrapped cover.
fn build_cover(
    program: &Program,
    steens: &SteensgaardResult,
    index: &RelevantIndex,
    config: &Config,
    alias_partitions: &HashMap<bootstrap_analyses::ClassId, Vec<VarId>>,
) -> AliasCover {
    let oneflow_result = match config.middle_stage {
        MiddleStage::OneFlow => Some(oneflow::analyze(program)),
        MiddleStage::None => None,
    };
    let mut keys: Vec<_> = alias_partitions.keys().copied().collect();
    keys.sort();
    let mut clusters = Vec::new();
    for class in keys {
        let pointer_members: Vec<VarId> = alias_partitions[&class].clone();
        if pointer_members.len() <= config.andersen_threshold {
            clusters.push(Cluster::new(
                0,
                ClusterOrigin::Steensgaard(class),
                pointer_members,
            ));
            continue;
        }
        // Oversized: cascade. Optionally One-Flow first.
        let groups: Vec<(ClusterOrigin, Vec<VarId>)> = match &oneflow_result {
            Some(ofr) => ofr
                .clusters(&pointer_members)
                .into_iter()
                .map(|ms| {
                    (
                        ClusterOrigin::OneFlow {
                            partition: class,
                            object: None,
                        },
                        ms,
                    )
                })
                .collect(),
            None => vec![(ClusterOrigin::Steensgaard(class), pointer_members)],
        };
        for (origin, group) in groups {
            if group.len() <= config.andersen_threshold {
                clusters.push(Cluster::new(0, origin, group));
                continue;
            }
            // Andersen, bootstrapped: restricted to the group's relevant
            // statements.
            let rel = relevant_statements_indexed(program, steens, index, &group);
            let stmts: Vec<&Stmt> = rel.stmts().map(|loc| program.stmt_at(loc)).collect();
            let an = andersen::analyze_stmts(program.var_count(), stmts);
            for ac in an.clusters(&group) {
                clusters.push(Cluster::new(
                    0,
                    ClusterOrigin::Andersen {
                        partition: class,
                        object: ac.object,
                    },
                    ac.members,
                ));
            }
        }
    }
    AliasCover::new(clusters)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bootstrap_ir::parse_program;

    #[test]
    fn small_partitions_stay_steensgaard() {
        let p = parse_program(
            "int a; int b; int *x; int *y;
             void main() { x = &a; y = &b; }",
        )
        .unwrap();
        let s = Session::new(&p, Config::default());
        assert!(s
            .cover()
            .clusters()
            .iter()
            .all(|c| matches!(c.origin, ClusterOrigin::Steensgaard(_))));
        assert!(s.cover().is_disjoint());
        assert!(s.cover().covers(s.pointers()));
    }

    #[test]
    fn oversized_partition_is_refined_by_andersen() {
        // One big partition: hub absorbs many pointers, each pointing to a
        // distinct object — Andersen splits them apart.
        let mut src = String::from("int *hub;\n");
        for i in 0..12 {
            src.push_str(&format!("int o{i}; int *p{i};\n"));
        }
        src.push_str("void main() {\n");
        for i in 0..12 {
            src.push_str(&format!("p{i} = &o{i};\nhub = p{i};\n"));
        }
        src.push_str("}\n");
        let p = parse_program(&src).unwrap();
        let config = Config {
            andersen_threshold: 4,
            ..Config::default()
        };
        let s = Session::new(&p, config);
        let andersen_clusters = s
            .cover()
            .clusters()
            .iter()
            .filter(|c| matches!(c.origin, ClusterOrigin::Andersen { .. }))
            .count();
        assert!(andersen_clusters > 1, "expected Andersen refinement");
        assert!(s.cover().covers(s.pointers()));
        // Andersen clusters are smaller than the original partition.
        assert!(s.cover().max_cluster_size() < s.steensgaard_cover().max_cluster_size());
    }

    #[test]
    fn whole_cover_is_single_cluster() {
        let p = parse_program("int a; int *x; void main() { x = &a; }").unwrap();
        let s = Session::new(&p, Config::default());
        let whole = s.whole_cover();
        assert_eq!(whole.len(), 1);
        assert_eq!(whole.clusters()[0].members.len(), s.pointers().len());
    }

    #[test]
    fn oneflow_middle_stage_builds_valid_cover() {
        let mut src = String::from("int *hub;\n");
        for i in 0..12 {
            src.push_str(&format!("int o{i}; int *p{i};\n"));
        }
        src.push_str("void main() {\n");
        for i in 0..12 {
            src.push_str(&format!("p{i} = &o{i};\nhub = p{i};\n"));
        }
        src.push_str("}\n");
        let p = parse_program(&src).unwrap();
        let config = Config {
            andersen_threshold: 4,
            middle_stage: MiddleStage::OneFlow,
            ..Config::default()
        };
        let s = Session::new(&p, config);
        assert!(s.cover().covers(s.pointers()));
        assert!(s.cover().clusters().iter().any(|c| matches!(
            c.origin,
            ClusterOrigin::OneFlow { .. }
        ) || matches!(
            c.origin,
            ClusterOrigin::Andersen { .. }
        )));
    }

    #[test]
    fn callers_map_lists_call_sites() {
        let p = parse_program("void g() { } void main() { g(); g(); }").unwrap();
        let s = Session::new(&p, Config::default());
        let g = p.func_named("g").unwrap();
        assert_eq!(s.callers_of(g).len(), 2);
        assert!(s.callers_of(p.func_named("main").unwrap()).is_empty());
    }

    #[test]
    fn timings_are_recorded() {
        let p = parse_program("int a; int *x; void main() { x = &a; }").unwrap();
        let s = Session::new(&p, Config::default());
        // Just ensure they are populated (non-panicking access).
        let _ = s.timings().steensgaard;
        let _ = s.timings().clustering;
    }
}
