//! Bridge between a [`Session`] and the content-addressed persistent
//! store (`bootstrap-store`): key derivation, the relocatable payload
//! codec, and the consult/publish protocol (DESIGN.md §12).
//!
//! The store crate owns the on-disk envelope; this module owns what goes
//! inside it and how it is keyed:
//!
//! * **Key** — fxhash of (format version, result-affecting options, the
//!   cluster's sorted member names, the sorted rendering of its
//!   relevant-statement slice). Content-addressed: editing any relevant
//!   statement moves the key, so stale entries are simply never found.
//! * **Payload** — name tables (IR variable and function names are
//!   globally unique mangled strings, e.g. `func::name`, `heap@func:3`,
//!   `&func`, so a name is a position-independent reference) followed by
//!   the cluster's summary tuples, its recorded FSCS query answers, and
//!   the FSCI oracle results over its slice. Conditions are stored
//!   structurally and re-interned on load — the `CondId` remap.
//! * **Gate** — summaries consult the cross-partition FSCI oracle during
//!   their fixpoint, so the payload is only valid for the exact program
//!   it was computed from. Loads are gated on the whole-program hash
//!   recorded in the envelope; per-cluster keys still give eviction and
//!   corruption isolation at cluster granularity.
//!
//! Every failure past the envelope (program-hash mismatch, undecodable
//! payload, a name that no longer resolves) demotes the hit to an
//! invalidation and falls back to a recompute — the store can cost time,
//! never an answer.

use std::collections::{HashMap, HashSet};
use std::hash::Hasher;
use std::sync::Arc;

use bootstrap_ir::{display::stmt_to_string, FuncId, Loc, Program, VarId};
use bootstrap_store::codec::{Reader, Writer};
use bootstrap_store::{FxHasher64, LoadOutcome, Store, StoreConfig, StoreCounters, FORMAT_VERSION};
use parking_lot::RwLock;

use crate::constraint::{Atom, Cond};
use crate::degrade::FaultPhase;
use crate::engine::ClusterEngine;
use crate::session::{Config, MiddleStage, QueryRecord, Session};
use crate::summary::{Source, SummaryKey, Value};

/// The session-side face of the persistent store: one per session,
/// shared (behind `&Session`) by every analyzer and worker thread.
pub(crate) struct ClusterStore {
    store: Store,
    options_hash: u64,
    program_hash: u64,
    /// Keys installed warm this run. A warm engine's recorded artifacts
    /// are a subset of the cold ones (queries answered from the store
    /// are not re-recorded), so publishing them back would shrink the
    /// entry; hits are therefore never re-published.
    hit_keys: RwLock<HashSet<u64>>,
    /// A store-phase fault is armed: every consult treats its entry as
    /// corrupt without reading it, forcing the recompute-and-overwrite
    /// path the fuzz matrix checks.
    faulted: bool,
    /// Cross-epoch adoption: when the incremental differ proves a set of
    /// alias partitions unchanged between the previous program epoch and
    /// this one, entries recorded under the previous whole-program hash
    /// are accepted for clusters wholly inside that clean set.
    adoption: RwLock<Option<Adoption>>,
}

/// Proof, from the incremental partition differ, that entries written
/// under `prev_program_hash` are still valid for clusters whose members
/// all live in `clean` partitions (cluster independence: a cluster's
/// summaries only consult facts inside its own relevant slice, and a
/// clean fingerprint pins that slice byte-for-byte).
pub(crate) struct Adoption {
    pub(crate) prev_program_hash: u64,
    pub(crate) clean: HashSet<bootstrap_analyses::ClassId>,
}

impl ClusterStore {
    /// Opens the session's store. `None` (persistence disabled) when the
    /// directory cannot be opened: a missing cache may cost time, never
    /// a run.
    pub(crate) fn open(sc: StoreConfig, config: &Config, program: &Program) -> Option<Self> {
        let store = Store::open(sc).ok()?;
        // Phase-only match (ignoring any cluster scope): store consults
        // have no stable cluster slot to scope by.
        let faulted = config
            .fault_plan
            .is_some_and(|p| p.phase == FaultPhase::Store);
        Some(ClusterStore {
            store,
            options_hash: options_hash(config),
            program_hash: program_hash(program),
            hit_keys: RwLock::new(HashSet::new()),
            faulted,
            adoption: RwLock::new(None),
        })
    }

    /// Arms cross-epoch adoption (see [`Adoption`]). Replaces any earlier
    /// grant: each edit epoch re-derives its clean set from scratch.
    pub(crate) fn adopt(&self, adoption: Adoption) {
        *self.adoption.write() = Some(adoption);
    }

    /// This opening's hit/miss/invalidated counters.
    pub(crate) fn counters(&self) -> StoreCounters {
        self.store.counters()
    }

    /// The content address of one cluster's artifacts, or `None` when a
    /// member name fails to round-trip through the program's name table
    /// (never the case for parsed or builder-made programs — names are
    /// mangled to be unique — but cheap to verify instead of trust).
    fn cluster_key(&self, program: &Program, engine: &ClusterEngine) -> Option<u64> {
        let mut h = FxHasher64::default();
        h.write_u64(u64::from(FORMAT_VERSION));
        h.write_u64(self.options_hash);
        let mut names: Vec<&str> = Vec::with_capacity(engine.members().len());
        for &m in engine.members() {
            let name = program.var(m).name();
            if program.var_named(name) != Some(m) {
                return None;
            }
            names.push(name);
        }
        names.sort_unstable();
        h.write_u64(names.len() as u64);
        for n in names {
            hash_str(&mut h, n);
        }
        let mut lines: Vec<String> = engine
            .relevant()
            .stmts()
            .map(|loc| {
                format!(
                    "{}@{}: {}",
                    program.func(loc.func).name(),
                    loc.stmt,
                    stmt_to_string(program, program.stmt_at(loc))
                )
            })
            .collect();
        lines.sort_unstable();
        h.write_u64(lines.len() as u64);
        for l in lines {
            hash_str(&mut h, &l);
        }
        Some(h.finish())
    }

    /// Consults the store for a freshly built engine, splicing any valid
    /// entry into it (summaries), the session (query answers), and the
    /// shared FSCI cache. Called by the analyzer right after Algorithm 1
    /// builds the slice, before any solving.
    pub(crate) fn consult(&self, session: &Session<'_>, engine: &mut ClusterEngine) {
        let program = session.program();
        let Some(key) = self.cluster_key(program, engine) else {
            return;
        };
        if self.faulted {
            self.store.probe_invalidated(key);
            return;
        }
        let (payload, entry_program_hash) = match self.store.load(key, self.options_hash) {
            LoadOutcome::Hit {
                payload,
                program_hash,
            } => (payload, program_hash),
            LoadOutcome::Miss | LoadOutcome::Invalidated => return,
        };
        let mut adopted = false;
        if entry_program_hash != self.program_hash {
            // A content-equal slice from a different program: the
            // summaries may have consulted FSCI facts that no longer
            // hold — unless the incremental differ proved every partition
            // this cluster touches unchanged since that exact epoch.
            if self.may_adopt(session, engine, entry_program_hash) {
                adopted = true;
            } else {
                self.store.demote_hit();
                return;
            }
        }
        let Some(entry) = decode_payload(&payload, program) else {
            self.store.demote_hit();
            return;
        };
        for (skey, tuples) in &entry.summaries {
            if engine.install_summary(*skey, tuples).is_err() {
                // Arena full mid-splice. Installed entries are final
                // fixpoint values and stay; the engine computes the rest
                // organically (degrading through the ladder if the arena
                // stays full, exactly as a cold run would).
                break;
            }
        }
        for ((v, loc), sources) in entry.queries {
            session.install_warm_query(v, loc, sources);
        }
        for ((v, loc), pts) in entry.fsci {
            session.fsci_cache().insert(v, loc, pts.map(Arc::new));
        }
        if adopted {
            // Re-home the entry under the current epoch's program hash so
            // the next epoch can chain its own adoption from this one.
            let _ = self
                .store
                .save(key, self.options_hash, self.program_hash, &payload);
        }
        self.hit_keys.write().insert(key);
    }

    /// `true` when an adoption grant covers this engine: the entry was
    /// written at exactly the granted previous epoch and every member's
    /// alias partition is in the proven-clean set.
    fn may_adopt(
        &self,
        session: &Session<'_>,
        engine: &ClusterEngine,
        entry_program_hash: u64,
    ) -> bool {
        let adoption = self.adoption.read();
        let Some(a) = adoption.as_ref() else {
            return false;
        };
        if entry_program_hash != a.prev_program_hash {
            return false;
        }
        engine
            .members()
            .iter()
            .all(|&m| a.clean.contains(&session.steens().partition_key(m)))
    }

    /// Publishes one clean engine's artifacts (summaries, recorded query
    /// answers over its members, FSCI results over its slice). Skips
    /// keys installed warm this run; overwrites invalidated entries with
    /// the forced recompute's results.
    pub(crate) fn publish(&self, session: &Session<'_>, engine: &ClusterEngine) {
        let program = session.program();
        let Some(key) = self.cluster_key(program, engine) else {
            return;
        };
        if self.hit_keys.read().contains(&key) {
            return;
        }
        let Some(payload) = encode_payload(session, engine) else {
            return;
        };
        let _ = self
            .store
            .save(key, self.options_hash, self.program_hash, &payload);
    }
}

fn hash_str(h: &mut FxHasher64, s: &str) {
    h.write_u64(s.len() as u64);
    h.write(s.as_bytes());
}

/// Hash of every configuration knob that can change an analysis result.
/// `fault_plan` is deliberately excluded (faults force recomputes through
/// their own path) and so is the store config itself.
fn options_hash(config: &Config) -> u64 {
    let mut h = FxHasher64::default();
    h.write_u64(config.andersen_threshold as u64);
    h.write_u64(config.cond_cap as u64);
    h.write_u64(u64::from(config.alias_on_entry_garbage));
    h.write_u64(u64::from(config.alias_on_null));
    h.write_u64(config.oracle_step_budget);
    h.write_u64(config.query_step_budget);
    h.write_u64(match config.middle_stage {
        MiddleStage::None => 0,
        MiddleStage::OneFlow => 1,
    });
    h.write_u64(u64::from(config.path_sensitive));
    h.write_u64(u64::from(config.interner_max_ids));
    h.finish()
}

/// Whole-program hash: fxhash of the program's canonical rendering.
pub(crate) fn program_hash(program: &Program) -> u64 {
    let mut h = FxHasher64::default();
    hash_str(&mut h, &program.to_string());
    h.finish()
}

/// Name tables under construction during encoding. Interning verifies the
/// name round-trips through the program's lookup maps — the property the
/// decode side relies on — and refuses the publish otherwise.
struct Names<'p> {
    program: &'p Program,
    vars: Vec<&'p str>,
    var_index: HashMap<VarId, u32>,
    funcs: Vec<&'p str>,
    func_index: HashMap<FuncId, u32>,
}

impl<'p> Names<'p> {
    fn new(program: &'p Program) -> Self {
        Names {
            program,
            vars: Vec::new(),
            var_index: HashMap::new(),
            funcs: Vec::new(),
            func_index: HashMap::new(),
        }
    }

    fn var(&mut self, v: VarId) -> Option<u32> {
        if let Some(&i) = self.var_index.get(&v) {
            return Some(i);
        }
        let name = self.program.var(v).name();
        if self.program.var_named(name) != Some(v) {
            return None;
        }
        let i = self.vars.len() as u32;
        self.vars.push(name);
        self.var_index.insert(v, i);
        Some(i)
    }

    fn func(&mut self, f: FuncId) -> Option<u32> {
        if let Some(&i) = self.func_index.get(&f) {
            return Some(i);
        }
        let name = self.program.func(f).name();
        if self.program.func_named(name) != Some(f) {
            return None;
        }
        let i = self.funcs.len() as u32;
        self.funcs.push(name);
        self.func_index.insert(f, i);
        Some(i)
    }

    fn loc(&mut self, w: &mut Writer, loc: Loc) -> Option<()> {
        let f = self.func(loc.func)?;
        w.u32(f);
        w.u32(loc.stmt);
        Some(())
    }

    fn cond(&mut self, w: &mut Writer, c: &Cond) -> Option<()> {
        w.u8(u8::from(c.is_widened()));
        w.u32(c.atoms().len() as u32);
        for &atom in c.atoms() {
            match atom {
                Atom::PointsTo { loc, ptr, obj } => {
                    w.u8(0);
                    self.loc(w, loc)?;
                    w.u32(self.var(ptr)?);
                    w.u32(self.var(obj)?);
                }
                Atom::NotPointsTo { loc, ptr, obj } => {
                    w.u8(1);
                    self.loc(w, loc)?;
                    w.u32(self.var(ptr)?);
                    w.u32(self.var(obj)?);
                }
                Atom::Eq { loc, a, b } => {
                    w.u8(2);
                    self.loc(w, loc)?;
                    w.u32(self.var(a)?);
                    w.u32(self.var(b)?);
                }
                Atom::NotEq { loc, a, b } => {
                    w.u8(3);
                    self.loc(w, loc)?;
                    w.u32(self.var(a)?);
                    w.u32(self.var(b)?);
                }
                Atom::BranchTrue { var } => {
                    w.u8(4);
                    w.u32(self.var(var)?);
                }
                Atom::BranchFalse { var } => {
                    w.u8(5);
                    w.u32(self.var(var)?);
                }
            }
        }
        Some(())
    }
}

/// Encodes a clean engine's artifacts. `None` when some referenced name
/// does not round-trip (the cluster is then simply not cached).
///
/// Layout — all integers little-endian, all sections count-prefixed:
///
/// ```text
/// var names | func names | summaries | queries | fsci
/// ```
///
/// The record sections are encoded into a scratch buffer first (interning
/// names on the fly, in record order, so the table is deterministic) and
/// appended after the finished tables, keeping decode single-pass.
fn encode_payload(session: &Session<'_>, engine: &ClusterEngine) -> Option<Vec<u8>> {
    let program = session.program();
    let mut names = Names::new(program);

    let summaries = engine.summary_snapshot();
    let members: HashSet<VarId> = engine.members().iter().copied().collect();
    let queries: Vec<QueryRecord> = session
        .pending_queries_snapshot()
        .into_iter()
        .filter(|((v, _), _)| members.contains(v))
        .collect();
    let slice_vars: HashSet<VarId> = engine.relevant().vars().collect();
    let fsci: Vec<FsciRecord> = session
        .fsci_cache()
        .snapshot()
        .into_iter()
        .filter(|((v, _), _)| slice_vars.contains(v))
        .collect();

    let mut body = Writer::new();
    body.u32(summaries.len() as u32);
    for ((f, target), tuples) in &summaries {
        body.u32(names.func(*f)?);
        body.u32(names.var(*target)?);
        body.u32(tuples.len() as u32);
        for (value, cond) in tuples {
            match value {
                Value::Ptr(q) => {
                    body.u8(0);
                    body.u32(names.var(*q)?);
                }
                Value::Addr(o) => {
                    body.u8(1);
                    body.u32(names.var(*o)?);
                }
                Value::Null => body.u8(2),
            }
            names.cond(&mut body, cond)?;
        }
    }
    body.u32(queries.len() as u32);
    for ((v, loc), sources) in &queries {
        body.u32(names.var(*v)?);
        names.loc(&mut body, *loc)?;
        body.u32(sources.len() as u32);
        for (source, cond) in sources {
            match source {
                Source::Addr(o) => {
                    body.u8(0);
                    body.u32(names.var(*o)?);
                }
                Source::Null => body.u8(1),
                Source::EntryVar(q) => {
                    body.u8(2);
                    body.u32(names.var(*q)?);
                }
            }
            names.cond(&mut body, cond)?;
        }
    }
    body.u32(fsci.len() as u32);
    for ((v, loc), pts) in &fsci {
        body.u32(names.var(*v)?);
        names.loc(&mut body, *loc)?;
        match pts {
            Some(pts) => {
                body.u8(1);
                body.u32(pts.len() as u32);
                for &o in pts.iter() {
                    body.u32(names.var(o)?);
                }
            }
            None => body.u8(0),
        }
    }

    let mut w = Writer::new();
    w.u32(names.vars.len() as u32);
    for n in &names.vars {
        w.str(n);
    }
    w.u32(names.funcs.len() as u32);
    for n in &names.funcs {
        w.str(n);
    }
    let mut out = w.finish();
    out.extend_from_slice(&body.finish());
    Some(out)
}

/// One FSCI fact as snapshotted from the live cache: `None` marks a
/// recorded oracle degradation (a negative answer worth persisting too).
type FsciRecord = ((VarId, Loc), Option<Arc<Vec<VarId>>>);
/// The same fact decoded from disk, before re-wrapping in `Arc`.
type DecodedFsciRecord = ((VarId, Loc), Option<Vec<VarId>>);

/// A fully decoded entry, staged before anything is installed: a payload
/// that fails to decode (or resolve) installs *nothing*.
pub(crate) struct DecodedEntry {
    pub(crate) summaries: Vec<(SummaryKey, Vec<(Value, Cond)>)>,
    pub(crate) queries: Vec<QueryRecord>,
    pub(crate) fsci: Vec<DecodedFsciRecord>,
}

/// Decodes a payload against the live program, resolving every name
/// through the program's lookup maps (the relocation). `None` on any
/// malformed byte or unresolvable name.
fn decode_payload(raw: &[u8], program: &Program) -> Option<DecodedEntry> {
    let mut r = Reader::new(raw);
    let n_vars = r.u32().ok()?;
    let mut vars: Vec<VarId> = Vec::with_capacity(n_vars.min(65_536) as usize);
    for _ in 0..n_vars {
        vars.push(program.var_named(r.str().ok()?)?);
    }
    let n_funcs = r.u32().ok()?;
    let mut funcs: Vec<FuncId> = Vec::with_capacity(n_funcs.min(65_536) as usize);
    for _ in 0..n_funcs {
        funcs.push(program.func_named(r.str().ok()?)?);
    }
    let var = |i: u32| vars.get(i as usize).copied();
    let func = |i: u32| funcs.get(i as usize).copied();
    let loc = |r: &mut Reader<'_>| -> Option<Loc> {
        let f = func(r.u32().ok()?)?;
        Some(Loc::new(f, r.u32().ok()?))
    };
    let cond = |r: &mut Reader<'_>| -> Option<Cond> {
        let widened = r.u8().ok()? != 0;
        let n = r.u32().ok()?;
        let mut atoms = Vec::with_capacity(n.min(65_536) as usize);
        for _ in 0..n {
            let atom = match r.u8().ok()? {
                0 => Atom::PointsTo {
                    loc: loc(r)?,
                    ptr: var(r.u32().ok()?)?,
                    obj: var(r.u32().ok()?)?,
                },
                1 => Atom::NotPointsTo {
                    loc: loc(r)?,
                    ptr: var(r.u32().ok()?)?,
                    obj: var(r.u32().ok()?)?,
                },
                2 => Atom::Eq {
                    loc: loc(r)?,
                    a: var(r.u32().ok()?)?,
                    b: var(r.u32().ok()?)?,
                },
                3 => Atom::NotEq {
                    loc: loc(r)?,
                    a: var(r.u32().ok()?)?,
                    b: var(r.u32().ok()?)?,
                },
                4 => Atom::BranchTrue {
                    var: var(r.u32().ok()?)?,
                },
                5 => Atom::BranchFalse {
                    var: var(r.u32().ok()?)?,
                },
                _ => return None,
            };
            atoms.push(atom);
        }
        Some(Cond::from_parts(atoms, widened))
    };

    let n_summaries = r.u32().ok()?;
    let mut summaries = Vec::with_capacity(n_summaries.min(65_536) as usize);
    for _ in 0..n_summaries {
        let f = func(r.u32().ok()?)?;
        let target = var(r.u32().ok()?)?;
        let n_tuples = r.u32().ok()?;
        let mut tuples = Vec::with_capacity(n_tuples.min(65_536) as usize);
        for _ in 0..n_tuples {
            let value = match r.u8().ok()? {
                0 => Value::Ptr(var(r.u32().ok()?)?),
                1 => Value::Addr(var(r.u32().ok()?)?),
                2 => Value::Null,
                _ => return None,
            };
            tuples.push((value, cond(&mut r)?));
        }
        summaries.push(((f, target), tuples));
    }
    let n_queries = r.u32().ok()?;
    let mut queries = Vec::with_capacity(n_queries.min(65_536) as usize);
    for _ in 0..n_queries {
        let v = var(r.u32().ok()?)?;
        let at = loc(&mut r)?;
        let n_sources = r.u32().ok()?;
        let mut sources = Vec::with_capacity(n_sources.min(65_536) as usize);
        for _ in 0..n_sources {
            let source = match r.u8().ok()? {
                0 => Source::Addr(var(r.u32().ok()?)?),
                1 => Source::Null,
                2 => Source::EntryVar(var(r.u32().ok()?)?),
                _ => return None,
            };
            sources.push((source, cond(&mut r)?));
        }
        queries.push(((v, at), sources));
    }
    let n_fsci = r.u32().ok()?;
    let mut fsci = Vec::with_capacity(n_fsci.min(65_536) as usize);
    for _ in 0..n_fsci {
        let v = var(r.u32().ok()?)?;
        let at = loc(&mut r)?;
        let pts = match r.u8().ok()? {
            0 => None,
            _ => {
                let n = r.u32().ok()?;
                let mut p = Vec::with_capacity(n.min(65_536) as usize);
                for _ in 0..n {
                    p.push(var(r.u32().ok()?)?);
                }
                Some(p)
            }
        };
        fsci.push(((v, at), pts));
    }
    if r.remaining() != 0 {
        return None;
    }
    Some(DecodedEntry {
        summaries,
        queries,
        fsci,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::Config;
    use bootstrap_ir::parse_program;

    fn program() -> Program {
        parse_program(
            "int a; int b; int *x; int *y;
             int *id(int *q) { return q; }
             void main() { x = id(&a); y = id(&b); }",
        )
        .unwrap()
    }

    #[test]
    fn option_and_program_hashes_are_sensitive() {
        let p = program();
        let c1 = Config::default();
        let c2 = Config {
            cond_cap: 16,
            ..Config::default()
        };
        assert_ne!(options_hash(&c1), options_hash(&c2));
        assert_eq!(options_hash(&c1), options_hash(&c1.clone()));
        let p2 = parse_program("int a; int *x; void main() { x = &a; }").unwrap();
        assert_ne!(program_hash(&p), program_hash(&p2));
        assert_eq!(program_hash(&p), program_hash(&p));
    }

    #[test]
    fn payload_roundtrips_through_names() {
        let p = program();
        let config = Config::default();
        let session = Session::new(&p, config);
        // Drive a query through the session so there is something to
        // record, then encode/decode against the same program.
        let az = session.analyzer();
        let x = p.var_named("x").unwrap();
        let exit = p.entry().unwrap().exit();
        let mut budget = crate::budget::AnalysisBudget::unlimited();
        let _ = az.sources(x, exit, &mut budget);
        let engine_rc = az.engine_for(session.steens().partition_key(x));
        let engine = engine_rc.borrow();
        let payload = encode_payload(&session, &engine).expect("relocatable");
        let decoded = decode_payload(&payload, &p).expect("decodes");
        let snap = engine.summary_snapshot();
        assert_eq!(decoded.summaries, snap);
        // Tampering with any single byte either fails decode or yields
        // a *different* structure — never a panic.
        for i in 0..payload.len() {
            let mut bad = payload.clone();
            bad[i] ^= 0x40;
            let _ = decode_payload(&bad, &p);
        }
    }

    #[test]
    fn decode_rejects_unknown_names() {
        let p = program();
        let mut w = Writer::new();
        w.u32(1);
        w.str("no_such::var");
        w.u32(0);
        w.u32(0);
        w.u32(0);
        w.u32(0);
        assert!(decode_payload(&w.finish(), &p).is_none());
    }
}
