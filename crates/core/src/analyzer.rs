//! Interprocedural alias queries: the FSCI driver (Algorithm 3), the
//! dovetailing points-to oracle (Algorithm 2) and flow- and
//! context-sensitive queries (§3).
//!
//! An [`Analyzer`] is a caching query context over a [`Session`]. It owns
//! one [`ClusterEngine`] per Steensgaard partition (created lazily) plus a
//! memoized FSCI points-to cache. The dovetail invariant — summaries for a
//! partition at depth *d* only consult FSCI sets of strictly higher
//! partitions — is enforced dynamically with an in-progress guard: on
//! re-entry (the cyclic case) the oracle reports "unknown" and the engine
//! falls back to Steensgaard candidates plus Definition 8 constraints.

use std::cell::{Cell, RefCell};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::rc::Rc;
use std::sync::Arc;

use bootstrap_analyses::ClassId;
use bootstrap_ir::{FuncId, Loc, Stmt, VarId};

use crate::budget::{AnalysisBudget, Outcome};
use crate::constraint::Cond;
use crate::cover::Cluster;
use crate::degrade::PanicClass;
use crate::engine::{ClusterEngine, EngineCx, EngineOptions, PtsOracle};
use crate::intern::Interner;
use crate::parallel::ClusterReport;
use crate::profile::Phase;
use crate::session::Session;
use crate::summary::{Source, Value};

/// Thread-local FSCI memo: `None` marks an oracle budget miss.
type FsciMemo = HashMap<(VarId, Loc), Option<Arc<Vec<VarId>>>>;

/// An error raised by a malformed query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryError {
    /// The supplied calling context does not form a valid call chain
    /// ending at the queried location's function.
    InvalidContext(String),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::InvalidContext(msg) => write!(f, "invalid context: {msg}"),
        }
    }
}

impl std::error::Error for QueryError {}

/// A caching query context over a [`Session`].
///
/// Not `Sync`: create one analyzer per thread (the underlying [`Session`]
/// is shareable).
///
/// # Examples
///
/// ```
/// use bootstrap_core::{Config, Session};
///
/// let program = bootstrap_ir::parse_program(
///     "int a; int *p; int *q; void main() { p = &a; q = p; }",
/// )
/// .unwrap();
/// let session = Session::new(&program, Config::default());
/// let az = session.analyzer();
/// let main_exit = program.entry().unwrap().exit();
/// let p = program.var_named("p").unwrap();
/// let q = program.var_named("q").unwrap();
/// assert!(az.may_alias(p, q, main_exit).unwrap());
/// ```
pub struct Analyzer<'s> {
    session: &'s Session<'s>,
    engines: RefCell<HashMap<ClassId, Rc<RefCell<ClusterEngine>>>>,
    /// Thread-local memo over the session's shared cache: avoids the shared
    /// shard lock (and its hit/miss accounting) on repeat lookups. Values
    /// are `Arc` so they can be published to the shared cache verbatim.
    fsci_cache: RefCell<FsciMemo>,
    /// FSCI computations currently on the oracle stack; re-entry on the
    /// same `(variable, location)` is a genuine cyclic dependency (the
    /// paper's same-depth case) and degrades to the Steensgaard fallback.
    fsci_stack: RefCell<HashSet<(VarId, Loc)>>,
    /// Scratch memo for *nested* FSCI results, valid only while one
    /// top-level computation is in flight and cleared when it finishes.
    /// Nested results may carry a cycle cut, so they never enter the
    /// durable caches — but without any reuse the dovetailing recursion
    /// re-walks every level from scratch, and on cyclic points-to shapes
    /// (a struct with a back-pointer field) the tree grows exponentially.
    fsci_scratch: RefCell<FsciMemo>,
    /// The arena engines of this analyzer intern into — the session's
    /// shared interner, or a private (typically larger) one for a
    /// degraded-cluster retry.
    arena: Arc<Interner>,
    /// Set when a query panicked mid-walk on this analyzer. A panic can
    /// leave partially-fixpointed summaries behind, so the analyzer's FSCS
    /// answers are no longer trustworthy: [`crate::Session::query_at_loc`]
    /// skips tier 1 on a poisoned analyzer and the cluster drivers replace
    /// poisoned analyzers outright.
    poisoned: Cell<Option<PanicClass>>,
}

impl<'s> Analyzer<'s> {
    pub(crate) fn new(session: &'s Session<'s>) -> Self {
        Self::with_arena(session, Arc::clone(session.interner()))
    }

    pub(crate) fn with_arena(session: &'s Session<'s>, arena: Arc<Interner>) -> Self {
        Self {
            session,
            engines: RefCell::new(HashMap::new()),
            fsci_cache: RefCell::new(HashMap::new()),
            fsci_stack: RefCell::new(HashSet::new()),
            fsci_scratch: RefCell::new(HashMap::new()),
            arena,
            poisoned: Cell::new(None),
        }
    }

    /// The panic class that poisoned this analyzer, if any.
    pub fn poison_class(&self) -> Option<PanicClass> {
        self.poisoned.get()
    }

    /// Marks this analyzer poisoned (a panic unwound through its state).
    pub fn poison(&self, class: PanicClass) {
        if self.poisoned.get().is_none() {
            self.poisoned.set(Some(class));
        }
    }

    /// The underlying session.
    pub fn session(&self) -> &'s Session<'s> {
        self.session
    }

    fn cx(&self) -> EngineCx<'s> {
        self.session.engine_cx()
    }

    /// Builds an engine over the session's shared interning arena,
    /// recording the Algorithm 1 setup cost as the relevant phase. With a
    /// persistent store configured, the freshly sliced engine consults it
    /// before any solving: a valid entry pre-installs the summaries (and
    /// the session's recorded answers), making the fixpoint near-free.
    fn build_engine(&self, members: Vec<VarId>) -> ClusterEngine {
        let t0 = std::time::Instant::now();
        let config = self.session.config();
        let mut engine = ClusterEngine::with_engine_options(
            self.cx(),
            members,
            EngineOptions {
                cond_cap: config.cond_cap,
                path_sensitive: config.path_sensitive,
                uninterned: false,
                arena: Some(Arc::clone(&self.arena)),
                fault: None,
            },
        );
        self.session
            .profile()
            .record(Phase::Relevant, t0.elapsed(), 0);
        if let Some(store) = self.session.cluster_store() {
            store.consult(self.session, &mut engine);
        }
        engine
    }

    /// The (lazily created) engine for the Steensgaard alias partition
    /// with key `key` (see
    /// [`bootstrap_analyses::SteensgaardResult::partition_key`]).
    fn partition_engine(&self, key: ClassId) -> Rc<RefCell<ClusterEngine>> {
        if let Some(e) = self.engines.borrow().get(&key) {
            return Rc::clone(e);
        }
        let mut members = self.session.partition_members(key).to_vec();
        if members.is_empty() {
            // Non-pointer or synthetic variables are not in any alias
            // partition; analyze them as their own location class.
            members = self.session.steens().members(key).to_vec();
        }
        let engine = Rc::new(RefCell::new(self.build_engine(members)));
        self.engines.borrow_mut().insert(key, Rc::clone(&engine));
        engine
    }

    /// Flow-sensitive, context-insensitive value sources of `p` just before
    /// `loc`, over all contexts (Theorem 5 / Algorithm 3): each source is
    /// where a maximally complete update sequence ending in `p` begins.
    pub fn sources(
        &self,
        p: VarId,
        loc: Loc,
        budget: &mut AnalysisBudget,
    ) -> Outcome<Vec<(Source, Cond)>> {
        self.with_partition_engine(p, |az, e| az.sources_with_engine(e, p, loc, budget))
    }

    /// Runs `f` with the partition engine of `p`, falling back to a
    /// throwaway single-pointer engine when a caller already holds that
    /// engine (recursive FSCI resolution within one partition, or a user
    /// driving an engine directly with the analyzer as oracle) —
    /// Algorithm 1's closure from `{p}` still pulls in everything that
    /// affects `p`. A degraded run can leave partially-fixpointed
    /// summaries in the engine, which a later walk would consult as if
    /// converged — an unsound under-approximation — so the engine is
    /// dropped from the cache on any non-`Done` outcome.
    fn with_partition_engine<T>(
        &self,
        p: VarId,
        f: impl FnOnce(&Self, &mut ClusterEngine) -> Outcome<T>,
    ) -> Outcome<T> {
        let class = self.session.steens().partition_key(p);
        let engine = self.partition_engine(class);
        if let Ok(mut e) = engine.try_borrow_mut() {
            let out = f(self, &mut e);
            drop(e);
            if !out.is_done() {
                self.engines.borrow_mut().remove(&class);
            }
            return out;
        }
        let mut fresh = self.build_engine(vec![p]);
        f(self, &mut fresh)
    }

    /// The Algorithm 3 climb with an explicit engine — used both by
    /// [`Analyzer::sources`] (partition engine) and by
    /// [`Analyzer::process_cluster`] (the cluster's own engine, so the
    /// measured cost is the cluster's).
    fn sources_with_engine(
        &self,
        engine: &mut ClusterEngine,
        p: VarId,
        loc: Loc,
        budget: &mut AnalysisBudget,
    ) -> Outcome<Vec<(Source, Cond)>> {
        let mut results: Vec<(Source, Cond)> = Vec::new();
        let mut queue: Vec<(FuncId, VarId)> = Vec::new();
        let mut seen: HashSet<(FuncId, VarId)> = HashSet::new();
        let entry_func = self.session.program().entry().map(|f| f.id());

        let local = match engine.local_sources(self.cx(), p, loc, self, budget) {
            Outcome::Done(v) => v,
            Outcome::Degraded(r) => return Outcome::Degraded(r),
        };
        absorb(local, loc.func, &mut results, &mut queue, &mut seen);

        // Algorithm 3: propagate entry frontiers up through all callers.
        while let Some((f, q)) = queue.pop() {
            let callers = self.session.callers_of(f);
            if Some(f) == entry_func || callers.is_empty() {
                results.push((Source::EntryVar(q), Cond::top()));
            }
            for &cs in callers {
                let vals = match engine.local_sources(self.cx(), q, cs, self, budget) {
                    Outcome::Done(v) => v,
                    Outcome::Degraded(r) => return Outcome::Degraded(r),
                };
                absorb(vals, cs.func, &mut results, &mut queue, &mut seen);
            }
        }
        results.sort();
        results.dedup();
        Outcome::Done(results)
    }

    /// Analyzes one cluster end to end — Algorithm 1's slice, all function
    /// summaries, and the interprocedural sources of every member at the
    /// entry function's exit. This is the per-cluster work unit whose cost
    /// the Table 1 harness measures.
    pub fn process_cluster(&self, cluster: &Cluster, mut budget: AnalysisBudget) -> ClusterReport {
        let t0 = std::time::Instant::now();
        let cx = self.cx();
        let mut engine = self.build_engine(cluster.members.clone());
        let fscs_start = std::time::Instant::now();
        let steps_before = engine.steps();
        let mut degraded = match engine.compute_all_summaries(cx, self, &mut budget) {
            Outcome::Done(()) => None,
            Outcome::Degraded(r) => Some(r),
        };
        if degraded.is_none() {
            if let Some(entry) = self.session.program().entry() {
                let exit = entry.exit();
                for &m in &cluster.members {
                    match self.sources_with_engine(&mut engine, m, exit, &mut budget) {
                        Outcome::Done(_) => {}
                        Outcome::Degraded(r) => {
                            degraded = Some(r);
                            break;
                        }
                    }
                }
            }
        }
        self.session.profile().record(
            Phase::Fscs,
            fscs_start.elapsed(),
            engine.steps() - steps_before,
        );
        // Publish only a *clean* cluster: a degraded fixpoint can hold
        // partial summaries that must never be reused as if converged.
        if degraded.is_none() && self.poisoned.get().is_none() {
            if let Some(store) = self.session.cluster_store() {
                store.publish(self.session, &engine);
            }
        }
        ClusterReport {
            cluster_id: cluster.id,
            size: cluster.members.len(),
            relevant_stmts: engine.relevant().stmt_count(),
            summary_entries: engine.summaries().entry_count(),
            summary_tuples: engine.summaries().tuple_count(),
            duration: t0.elapsed(),
            degraded,
        }
    }

    /// Like [`Analyzer::sources`], but restricted to one calling context
    /// (§3 "Computing Flow and Context-Sensitive Aliases"). `context` lists
    /// the call sites from the outermost frame to the one that invokes
    /// `loc`'s function; an empty context means `loc` is in the entry
    /// function.
    ///
    /// # Errors
    ///
    /// Returns [`QueryError::InvalidContext`] if the call sites do not form
    /// a chain ending at `loc.func`.
    pub fn sources_in_context(
        &self,
        p: VarId,
        loc: Loc,
        context: &[Loc],
        budget: &mut AnalysisBudget,
    ) -> Result<Outcome<Vec<(Source, Cond)>>, QueryError> {
        self.validate_context(loc, context)?;
        Ok(self.with_partition_engine(p, |az, e| {
            az.sources_in_context_with_engine(e, p, loc, context, budget)
        }))
    }

    /// The context-restricted climb with an explicit engine.
    fn sources_in_context_with_engine(
        &self,
        engine: &mut ClusterEngine,
        p: VarId,
        loc: Loc,
        context: &[Loc],
        budget: &mut AnalysisBudget,
    ) -> Outcome<Vec<(Source, Cond)>> {
        let mut results: Vec<(Source, Cond)> = Vec::new();

        // Frontier of variables tracked at the entry of the current frame.
        let mut frontier: HashSet<VarId> = HashSet::new();
        let local = match engine.local_sources(self.cx(), p, loc, self, budget) {
            Outcome::Done(v) => v,
            Outcome::Degraded(r) => return Outcome::Degraded(r),
        };
        for (val, cond) in local {
            match val {
                Value::Addr(o) => results.push((Source::Addr(o), cond)),
                Value::Null => results.push((Source::Null, cond)),
                Value::Ptr(q) => {
                    frontier.insert(q);
                }
            }
        }
        // Climb the context from the innermost call site outwards.
        for &cs in context.iter().rev() {
            if frontier.is_empty() {
                break;
            }
            let mut next: HashSet<VarId> = HashSet::new();
            for q in frontier {
                let vals = match engine.local_sources(self.cx(), q, cs, self, budget) {
                    Outcome::Done(v) => v,
                    Outcome::Degraded(r) => return Outcome::Degraded(r),
                };
                for (val, cond) in vals {
                    match val {
                        Value::Addr(o) => results.push((Source::Addr(o), cond)),
                        Value::Null => results.push((Source::Null, cond)),
                        Value::Ptr(w) => {
                            next.insert(w);
                        }
                    }
                }
            }
            frontier = next;
        }
        for q in frontier {
            results.push((Source::EntryVar(q), Cond::top()));
        }
        results.sort();
        results.dedup();
        Outcome::Done(results)
    }

    fn validate_context(&self, loc: Loc, context: &[Loc]) -> Result<(), QueryError> {
        let program = self.session.program();
        let mut expected_callee = loc.func;
        for &cs in context.iter().rev() {
            match program.stmt_at(cs) {
                Stmt::Call(c) | Stmt::Spawn(c) => match c.target {
                    bootstrap_ir::CallTarget::Direct(g) if g == expected_callee => {
                        expected_callee = cs.func;
                    }
                    _ => {
                        return Err(QueryError::InvalidContext(format!(
                            "call at {cs} does not invoke {}",
                            program.func(expected_callee).name()
                        )))
                    }
                },
                _ => {
                    return Err(QueryError::InvalidContext(format!(
                        "{cs} is not a call site"
                    )))
                }
            }
        }
        if let Some(entry) = program.entry() {
            if expected_callee != entry.id() {
                return Err(QueryError::InvalidContext(format!(
                    "context does not start at the entry function (starts at {})",
                    program.func(expected_callee).name()
                )));
            }
        }
        Ok(())
    }

    /// Filters sources whose constraints are refutable against the FSCI
    /// points-to cache.
    pub(crate) fn satisfiable_sources(&self, sources: Vec<(Source, Cond)>) -> Vec<(Source, Cond)> {
        sources
            .into_iter()
            .filter(|(_, cond)| cond.satisfiable(|v, l| self.fsci_pts(v, l)))
            .collect()
    }

    /// May `p` and `q` alias just before `loc`, in some context
    /// (flow-sensitive, context-insensitive at the query level)?
    pub fn may_alias(&self, p: VarId, q: VarId, loc: Loc) -> Outcome<bool> {
        let mut budget = self.session.config().query_budget();
        if p == q {
            return Outcome::Done(true);
        }
        let sp = match self.sources(p, loc, &mut budget) {
            Outcome::Done(v) => self.satisfiable_sources(v),
            Outcome::Degraded(r) => return Outcome::Degraded(r),
        };
        let sq = match self.sources(q, loc, &mut budget) {
            Outcome::Done(v) => self.satisfiable_sources(v),
            Outcome::Degraded(r) => return Outcome::Degraded(r),
        };
        Outcome::Done(self.sources_alias(&sp, &sq))
    }

    /// May `p` and `q` alias just before `loc` in the given context?
    ///
    /// # Errors
    ///
    /// Returns [`QueryError::InvalidContext`] for malformed contexts.
    pub fn may_alias_in_context(
        &self,
        p: VarId,
        q: VarId,
        loc: Loc,
        context: &[Loc],
    ) -> Result<Outcome<bool>, QueryError> {
        let mut budget = self.session.config().query_budget();
        if p == q {
            return Ok(Outcome::Done(true));
        }
        let sp = match self.sources_in_context(p, loc, context, &mut budget)? {
            Outcome::Done(v) => self.satisfiable_sources(v),
            Outcome::Degraded(r) => return Ok(Outcome::Degraded(r)),
        };
        let sq = match self.sources_in_context(q, loc, context, &mut budget)? {
            Outcome::Done(v) => self.satisfiable_sources(v),
            Outcome::Degraded(r) => return Ok(Outcome::Degraded(r)),
        };
        Ok(Outcome::Done(self.sources_alias(&sp, &sq)))
    }

    fn sources_alias(&self, sp: &[(Source, Cond)], sq: &[(Source, Cond)]) -> bool {
        let config = self.session.config();
        for (s1, c1) in sp {
            for (s2, c2) in sq {
                if !s1.same_value(*s2) {
                    continue;
                }
                // A concrete execution reaching the query point follows a
                // single path; the two sources must be jointly feasible on
                // it (syntactic check; path literals make this the paper's
                // infeasible-path weeding).
                if c1.and_cond(c2, config.cond_cap).is_none() {
                    continue;
                }
                match s1 {
                    Source::Addr(_) => return true,
                    Source::EntryVar(_) if config.alias_on_entry_garbage => return true,
                    Source::Null if config.alias_on_null => return true,
                    _ => {}
                }
            }
        }
        false
    }

    /// Must `p` and `q` alias just before `loc`? A conservative
    /// under-approximation: both pointers have exactly one unconditional
    /// source and it is the same object address — the form of must-alias
    /// the lockset application needs.
    pub fn must_alias(&self, p: VarId, q: VarId, loc: Loc) -> Outcome<bool> {
        let mut budget = self.session.config().query_budget();
        if p == q {
            return Outcome::Done(true);
        }
        let sp = match self.sources(p, loc, &mut budget) {
            Outcome::Done(v) => v,
            Outcome::Degraded(r) => return Outcome::Degraded(r),
        };
        let sq = match self.sources(q, loc, &mut budget) {
            Outcome::Done(v) => v,
            Outcome::Degraded(r) => return Outcome::Degraded(r),
        };
        let single = |s: &[(Source, Cond)]| match s {
            [(Source::Addr(o), cond)] if cond.is_top() && !cond.is_widened() => Some(*o),
            _ => None,
        };
        if matches!((single(&sp), single(&sq)), (Some(a), Some(b)) if a == b) {
            return Outcome::Done(true);
        }
        // Path-sensitive upgrade: even with several sources per pointer,
        // the pointers must alias if on *every* path their values coincide.
        // BDDs answer the tautology question the syntactic conjunctions
        // cannot (the paper's suggested use of BDDs, §3).
        if self.session.config().path_sensitive {
            return Outcome::Done(self.must_by_path_coverage(&sp, &sq));
        }
        Outcome::Done(false)
    }

    /// Sound must-alias over branch-literal conditions: requires (a) every
    /// source condition to be a pure, unwidened conjunction of branch
    /// literals, (b) each pointer's differing-value sources to be mutually
    /// exclusive (so each path determines one value), and (c) the
    /// disjunction of matching-value pair conditions to be a tautology
    /// (every path has a matching pair).
    fn must_by_path_coverage(&self, sp: &[(Source, Cond)], sq: &[(Source, Cond)]) -> bool {
        use crate::bdd::Manager;
        use crate::constraint::Atom;
        if sp.is_empty() || sq.is_empty() {
            return false;
        }
        let config = self.session.config();
        let value_ok = |s: &Source| match s {
            Source::Addr(_) => true,
            Source::EntryVar(_) => config.alias_on_entry_garbage,
            Source::Null => config.alias_on_null,
        };
        let mut mgr = Manager::new();
        let cond_bdd = |mgr: &mut Manager, cond: &Cond| -> Option<crate::bdd::Ref> {
            if cond.is_widened() {
                return None;
            }
            let mut acc = mgr.tru();
            for &atom in cond.atoms() {
                let lit = match atom {
                    Atom::BranchTrue { var } => mgr.var(var.index() as u32),
                    Atom::BranchFalse { var } => mgr.nvar(var.index() as u32),
                    _ => return None,
                };
                acc = mgr.and(acc, lit);
            }
            Some(acc)
        };
        let to_bdds = |mgr: &mut Manager, s: &[(Source, Cond)]| {
            s.iter()
                .map(|(src, cond)| {
                    if !value_ok(src) {
                        return None;
                    }
                    cond_bdd(mgr, cond).map(|b| (*src, b))
                })
                .collect::<Option<Vec<_>>>()
        };
        let (Some(bp), Some(bq)) = (to_bdds(&mut mgr, sp), to_bdds(&mut mgr, sq)) else {
            return false;
        };
        // (b) value determinism per pointer.
        for set in [&bp, &bq] {
            for (i, (v1, c1)) in set.iter().enumerate() {
                for (v2, c2) in &set[i + 1..] {
                    if v1 != v2 {
                        let joint = mgr.and(*c1, *c2);
                        if !mgr.is_false(joint) {
                            return false;
                        }
                    }
                }
            }
        }
        // (c) matching-pair coverage.
        let mut coverage = mgr.fls();
        for (v1, c1) in &bp {
            for (v2, c2) in &bq {
                if v1.same_value(*v2) {
                    let pair = mgr.and(*c1, *c2);
                    coverage = mgr.or(coverage, pair);
                }
            }
        }
        mgr.is_true(coverage)
    }

    /// All pointers that may alias `p` just before `loc`, drawn from the
    /// clusters of the session's cover containing `p` (Theorems 6/7: the
    /// union over those clusters is complete).
    pub fn alias_set(&self, p: VarId, loc: Loc) -> Outcome<Vec<VarId>> {
        let mut budget = self.session.config().query_budget();
        let sp = match self.sources(p, loc, &mut budget) {
            Outcome::Done(v) => self.satisfiable_sources(v),
            Outcome::Degraded(r) => return Outcome::Degraded(r),
        };
        let mut candidates: Vec<VarId> = Vec::new();
        for cluster in self.session.cover().clusters_containing(p) {
            candidates.extend(cluster.members.iter().copied());
        }
        candidates.sort();
        candidates.dedup();
        let mut out = Vec::new();
        for q in candidates {
            if q == p {
                continue;
            }
            let sq = match self.sources(q, loc, &mut budget) {
                Outcome::Done(v) => self.satisfiable_sources(v),
                Outcome::Degraded(r) => return Outcome::Degraded(r),
            };
            if self.sources_alias(&sp, &sq) {
                out.push(q);
            }
        }
        Outcome::Done(out)
    }

    /// The FSCI may-points-to set of `v` just before `loc` (dovetailing
    /// oracle). Returns `None` when the computation would recurse into a
    /// partition currently being analyzed (the cyclic case) or exceeds the
    /// oracle budget — callers fall back to Steensgaard candidates.
    pub fn fsci_pts(&self, v: VarId, loc: Loc) -> Option<Vec<VarId>> {
        if let Some(cached) = self.fsci_cache.borrow().get(&(v, loc)) {
            return cached.as_ref().map(|r| r.as_ref().clone());
        }
        // Session-wide shared cache next: another analyzer (possibly on
        // another thread) may already have done this computation. Only
        // clean results are ever published there, so adopting one is
        // indistinguishable from having computed it here.
        if let Some(shared) = self.session.fsci_cache().get(v, loc) {
            self.fsci_cache
                .borrow_mut()
                .insert((v, loc), shared.clone());
            return shared.as_ref().map(|r| r.as_ref().clone());
        }
        if self.fsci_stack.borrow().contains(&(v, loc)) {
            // Cyclic (same-depth) dependency: report unknown, do not cache.
            return None;
        }
        // Results computed while an outer FSCI computation is on the stack
        // may have been degraded by a cycle cut (sound, but
        // over-approximate relative to a clean run). Caching them durably
        // would make query answers depend on query *order*; only top-level
        // computations enter the durable caches. Nested results are still
        // reused *within* the current top-level computation (the scratch
        // memo) — recomputing them at every level makes the dovetailing
        // recursion exponential on cyclic points-to shapes.
        let clean = self.fsci_stack.borrow().is_empty();
        if !clean {
            if let Some(scratch) = self.fsci_scratch.borrow().get(&(v, loc)) {
                return scratch.as_ref().map(|r| r.as_ref().clone());
            }
        }
        self.fsci_stack.borrow_mut().insert((v, loc));
        let mut budget = self.session.config().oracle_budget();
        let result = match self.sources(v, loc, &mut budget) {
            Outcome::Done(srcs) => {
                let mut pts: Vec<VarId> = srcs
                    .into_iter()
                    .filter_map(|(s, _)| match s {
                        Source::Addr(o) => Some(o),
                        Source::Null | Source::EntryVar(_) => None,
                    })
                    .collect();
                pts.sort();
                pts.dedup();
                Some(Arc::new(pts))
            }
            Outcome::Degraded(_) => None,
        };
        self.fsci_stack.borrow_mut().remove(&(v, loc));
        if clean {
            // The top-level computation is over: its nested scratch
            // results (possibly cycle-cut) must not leak into later,
            // independently-ordered queries.
            self.fsci_scratch.borrow_mut().clear();
            self.fsci_cache
                .borrow_mut()
                .insert((v, loc), result.clone());
            self.session.fsci_cache().insert(v, loc, result.clone());
        } else {
            self.fsci_scratch
                .borrow_mut()
                .insert((v, loc), result.clone());
        }
        result.map(|r| r.as_ref().clone())
    }

    /// The store-warmed full-precision answer for `(p, loc)`, if one was
    /// loaded. Building the partition engine first is what consults the
    /// store, so even the very first query of a partition sees its warm
    /// artifacts.
    pub(crate) fn warm_sources(&self, p: VarId, loc: Loc) -> Option<Vec<(Source, Cond)>> {
        self.session.cluster_store()?;
        let class = self.session.steens().partition_key(p);
        let _ = self.partition_engine(class);
        self.session.warm_query(p, loc)
    }

    /// Publishes every cached partition engine's artifacts to the
    /// session's persistent store (a no-op without one). Checker drivers
    /// call this once after a query batch: only clean engines survive in
    /// the cache — degraded ones are dropped on the spot by
    /// [`Analyzer::with_partition_engine`] — so everything published is a
    /// completed fixpoint. A poisoned analyzer publishes nothing.
    pub fn publish_store(&self) {
        let Some(store) = self.session.cluster_store() else {
            return;
        };
        if self.poisoned.get().is_some() {
            return;
        }
        for engine in self.engines.borrow().values() {
            if let Ok(e) = engine.try_borrow() {
                store.publish(self.session, &e);
            }
        }
    }

    /// Direct access to the per-partition engine for inspection (summary
    /// counts, relevant-set sizes). Creates the engine if needed.
    pub fn engine_for(&self, class: ClassId) -> Rc<RefCell<ClusterEngine>> {
        self.partition_engine(class)
    }
}

impl PtsOracle for Analyzer<'_> {
    fn fsci_pts(&self, v: VarId, loc: Loc) -> Option<Vec<VarId>> {
        Analyzer::fsci_pts(self, v, loc)
    }
}

fn absorb(
    vals: Vec<(Value, Cond)>,
    func: FuncId,
    results: &mut Vec<(Source, Cond)>,
    queue: &mut Vec<(FuncId, VarId)>,
    seen: &mut HashSet<(FuncId, VarId)>,
) {
    for (val, cond) in vals {
        match val {
            Value::Addr(o) => results.push((Source::Addr(o), cond)),
            Value::Null => results.push((Source::Null, cond)),
            Value::Ptr(q) => {
                if seen.insert((func, q)) {
                    queue.push((func, q));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::Config;
    use bootstrap_ir::{parse_program, Program};

    fn session(src: &str) -> (Program, Config) {
        (parse_program(src).unwrap(), Config::default())
    }

    fn v(p: &Program, n: &str) -> VarId {
        p.var_named(n).unwrap()
    }

    fn main_exit(p: &Program) -> Loc {
        p.entry().unwrap().exit()
    }

    #[test]
    fn may_alias_after_copy() {
        let (p, c) = session("int a; int *x; int *y; void main() { x = &a; y = x; }");
        let s = Session::new(&p, c);
        let az = s.analyzer();
        assert!(az.may_alias(v(&p, "x"), v(&p, "y"), main_exit(&p)).unwrap());
    }

    #[test]
    fn flow_sensitivity_kills_stale_alias() {
        let (p, c) = session(
            "int a; int b; int *x; int *y;
             void main() { x = &a; y = &a; x = &b; }",
        );
        let s = Session::new(&p, c);
        let az = s.analyzer();
        // At exit, x = &b while y = &a: no alias (a flow-insensitive
        // analysis would report one).
        assert!(!az.may_alias(v(&p, "x"), v(&p, "y"), main_exit(&p)).unwrap());
        let an = bootstrap_analyses::andersen::analyze(&p);
        assert!(an.may_alias(v(&p, "x"), v(&p, "y")), "Andersen is coarser");
    }

    #[test]
    fn call_site_precision_beats_andersen() {
        // The classic id() polyvariance test: splicing summaries through
        // each call site keeps x and y apart.
        let (p, c) = session(
            "int a; int b; int *x; int *y;
             int *id(int *q) { return q; }
             void main() { x = id(&a); y = id(&b); }",
        );
        let s = Session::new(&p, c);
        let az = s.analyzer();
        assert!(!az.may_alias(v(&p, "x"), v(&p, "y"), main_exit(&p)).unwrap());
        let an = bootstrap_analyses::andersen::analyze(&p);
        assert!(
            an.may_alias(v(&p, "x"), v(&p, "y")),
            "Andersen conflates the call sites"
        );
        // Sanity: x still aliases a fresh pointer to a.
        assert!(az
            .must_alias(v(&p, "x"), v(&p, "x"), main_exit(&p))
            .unwrap());
    }

    #[test]
    fn context_sensitive_global_query() {
        let (p, c) = session(
            "int a; int b; int *g;
             void setter(int *vv) { g = vv; }
             void main() { setter(&a); setter(&b); }",
        );
        let s = Session::new(&p, c);
        let az = s.analyzer();
        let setter = p.func_named("setter").unwrap();
        let setter_exit = p.func(setter).exit();
        let call_sites: Vec<Loc> = s.callers_of(setter).to_vec();
        assert_eq!(call_sites.len(), 2);
        let (cs1, cs2) = (
            call_sites[0].min(call_sites[1]),
            call_sites[0].max(call_sites[1]),
        );
        let mut b1 = AnalysisBudget::unlimited();
        let srcs1 = az
            .sources_in_context(v(&p, "g"), setter_exit, &[cs1], &mut b1)
            .unwrap()
            .unwrap();
        let srcs2 = az
            .sources_in_context(v(&p, "g"), setter_exit, &[cs2], &mut b1)
            .unwrap()
            .unwrap();
        assert_eq!(srcs1, vec![(Source::Addr(v(&p, "a")), Cond::top())]);
        assert_eq!(srcs2, vec![(Source::Addr(v(&p, "b")), Cond::top())]);
        // Context-insensitive union sees both.
        let all = az.sources(v(&p, "g"), setter_exit, &mut b1).unwrap();
        assert_eq!(all.len(), 2);
    }

    #[test]
    fn may_alias_in_context_distinguishes() {
        let (p, c) = session(
            "int a; int *g; int *h;
             void set(int *vv) { g = vv; }
             void main() { h = &a; set(&a); set(g); set(h); }",
        );
        let s = Session::new(&p, c);
        let az = s.analyzer();
        let set = p.func_named("set").unwrap();
        let set_exit = p.func(set).exit();
        let mut sites = s.callers_of(set).to_vec();
        sites.sort();
        // In every context here g ends up as &a eventually; check the
        // first one precisely.
        let r = az
            .may_alias_in_context(v(&p, "g"), v(&p, "h"), set_exit, &[sites[0]])
            .unwrap()
            .unwrap();
        assert!(r);
    }

    #[test]
    fn invalid_context_is_rejected() {
        let (p, c) = session("int *gv; void g() { } void main() { g(); }");
        let s = Session::new(&p, c);
        let az = s.analyzer();
        let g = p.func_named("g").unwrap();
        let g_exit = p.func(g).exit();
        let not_a_call = Loc::new(p.func_named("main").unwrap(), 0);
        let x = p.var_named("gv").unwrap();
        let err = az
            .sources_in_context(x, g_exit, &[not_a_call], &mut AnalysisBudget::unlimited())
            .unwrap_err();
        assert!(matches!(err, QueryError::InvalidContext(_)));
        assert!(err.to_string().contains("not a call site"));
    }

    #[test]
    fn empty_context_requires_entry_function() {
        let (p, c) = session("int *gv; void g() { } void main() { g(); }");
        let s = Session::new(&p, c);
        let az = s.analyzer();
        let g = p.func_named("g").unwrap();
        let g_exit = p.func(g).exit();
        let x = p.var_named("gv").unwrap();
        assert!(az
            .sources_in_context(x, g_exit, &[], &mut AnalysisBudget::unlimited())
            .is_err());
        // But main's own locations accept the empty context.
        assert!(az
            .sources_in_context(x, main_exit(&p), &[], &mut AnalysisBudget::unlimited())
            .is_ok());
    }

    #[test]
    fn must_alias_positive_and_negative() {
        let (p, c) = session(
            "int a; int b; int cnd; int *x; int *y; int *z;
             void main() { x = &a; y = &a; if (cnd) { z = &a; } else { z = &b; } }",
        );
        let s = Session::new(&p, c);
        let az = s.analyzer();
        assert!(az
            .must_alias(v(&p, "x"), v(&p, "y"), main_exit(&p))
            .unwrap());
        assert!(!az
            .must_alias(v(&p, "x"), v(&p, "z"), main_exit(&p))
            .unwrap());
        assert!(az.may_alias(v(&p, "x"), v(&p, "z"), main_exit(&p)).unwrap());
    }

    #[test]
    fn fsci_pts_resolves_higher_pointer() {
        let (p, c) = session(
            "int a; int *x; int **z;
             void main() { x = &a; z = &x; *z = &a; }",
        );
        let s = Session::new(&p, c);
        let az = s.analyzer();
        // At the store, z points exactly to {x}.
        let main = p.func(p.func_named("main").unwrap());
        let store_loc = main
            .locs()
            .find(|(_, st)| matches!(st, Stmt::Store { .. }))
            .unwrap()
            .0;
        let pts = az.fsci_pts(v(&p, "z"), store_loc).unwrap();
        assert_eq!(pts, vec![v(&p, "x")]);
    }

    #[test]
    fn second_analyzer_hits_shared_fsci_cache() {
        let (p, c) = session(
            "int a; int *x; int **z;
             void main() { x = &a; z = &x; *z = &a; }",
        );
        let s = Session::new(&p, c);
        let main = p.func(p.func_named("main").unwrap());
        let store_loc = main
            .locs()
            .find(|(_, st)| matches!(st, Stmt::Store { .. }))
            .unwrap()
            .0;
        let az1 = s.analyzer();
        let pts1 = az1.fsci_pts(v(&p, "z"), store_loc).unwrap();
        let after_first = s.fsci_cache_stats();
        assert!(after_first.entries > 0, "clean result published");
        // A brand-new analyzer (as a parallel worker would create) answers
        // from the shared cache instead of recomputing.
        let az2 = s.analyzer();
        let pts2 = az2.fsci_pts(v(&p, "z"), store_loc).unwrap();
        assert_eq!(pts1, pts2);
        let after_second = s.fsci_cache_stats();
        assert!(
            after_second.hits > after_first.hits,
            "expected a shared-cache hit: {after_second:?}"
        );
    }

    #[test]
    fn alias_set_collects_cluster_aliases() {
        let (p, c) = session(
            "int a; int b; int *x; int *y; int *w;
             void main() { x = &a; y = x; w = &b; }",
        );
        let s = Session::new(&p, c);
        let az = s.analyzer();
        let aliases = az.alias_set(v(&p, "x"), main_exit(&p)).unwrap();
        assert!(aliases.contains(&v(&p, "y")));
        assert!(!aliases.contains(&v(&p, "w")));
    }

    #[test]
    fn process_cluster_reports_work() {
        let (p, c) = session(
            "int a; int *x; int *y;
             void set() { y = x; }
             void main() { x = &a; set(); }",
        );
        let s = Session::new(&p, c);
        let az = s.analyzer();
        let cluster = s.cover().clusters_containing(v(&p, "x")).next().unwrap();
        let report = az.process_cluster(cluster, AnalysisBudget::unlimited());
        assert!(report.degraded.is_none());
        assert!(report.relevant_stmts > 0);
        assert!(report.summary_tuples > 0);
        assert_eq!(report.size, cluster.members.len());
    }

    #[test]
    fn null_does_not_alias_by_default() {
        let (p, c) = session("int *x; int *y; void main() { x = NULL; y = NULL; }");
        let s = Session::new(&p, c);
        let az = s.analyzer();
        assert!(!az.may_alias(v(&p, "x"), v(&p, "y"), main_exit(&p)).unwrap());
        // With the flag on, NULL values compare equal.
        let c2 = Config {
            alias_on_null: true,
            ..Config::default()
        };
        let s2 = Session::new(&p, c2);
        let az2 = s2.analyzer();
        assert!(az2
            .may_alias(v(&p, "x"), v(&p, "y"), main_exit(&p))
            .unwrap());
    }

    #[test]
    fn free_kills_alias() {
        let (p, c) = session(
            "int a; int *x; int *y;
             void main() { x = &a; y = x; free(x); }",
        );
        let s = Session::new(&p, c);
        let az = s.analyzer();
        assert!(!az.may_alias(v(&p, "x"), v(&p, "y"), main_exit(&p)).unwrap());
    }

    #[test]
    fn heap_sites_alias_iff_same_site() {
        let (p, c) = session(
            "int *x; int *y; int *z; int cnd;
             void main() { x = malloc(4); if (cnd) { y = x; } else { y = malloc(4); } z = malloc(8); }",
        );
        let s = Session::new(&p, c);
        let az = s.analyzer();
        assert!(az.may_alias(v(&p, "x"), v(&p, "y"), main_exit(&p)).unwrap());
        assert!(!az.may_alias(v(&p, "x"), v(&p, "z"), main_exit(&p)).unwrap());
    }

    #[test]
    fn cyclic_back_pointer_queries_terminate() {
        // A stream/state pair with a back-pointer field (the libbz2 shape):
        // the dovetailing FSCI oracle recurses through the collapsed
        // stores, and without the nested scratch memo the recursion tree
        // grows exponentially — this test hung before it was added.
        let (p, _) = session(
            r#"
            typedef unsigned char UChar;
            typedef struct S_s { UChar *next_in; int avail_in; void *state; } S;
            typedef struct E_s { S *strm; int nblock; UChar block[64]; } E;
            S gs; E gee;
            UChar input_buf[64];
            int rle_run(S *s) {
                E *e; int ch;
                e = (E *)s->state;
                while (s->avail_in > 0) {
                    ch = (int)*s->next_in;
                    s->next_in = s->next_in + 1;
                    s->avail_in = s->avail_in - 1;
                    e->block[e->nblock] = (UChar)ch;
                }
                return 0;
            }
            void main() {
                int r;
                gs.state = (void *)&gee;
                gee.strm = &gs;
                gs.next_in = input_buf;
                gs.avail_in = 10;
                r = rle_run(&gs);
            }
            "#,
        );
        // Modest budgets: the point is termination, not precision — with
        // the scratch memo the budget is barely touched, without it the
        // recursion re-spends the oracle budget at every level.
        let c = Config {
            query_step_budget: 50_000,
            oracle_step_budget: 5_000,
            ..Config::default()
        };
        let s = Session::new(&p, c);
        let az = s.analyzer();
        let exit = main_exit(&p);
        for &ptr in s.pointers() {
            let _ = s.query_at_loc(&az, ptr, exit);
        }
    }
}
