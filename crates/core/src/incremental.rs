//! Incremental invalidation across program edit epochs.
//!
//! The paper's cluster-independence theorem (clusters of a disjoint alias
//! cover can be analyzed in isolation) is exactly an *invalidation
//! boundary*: after an edit, a cluster whose inputs are untouched needs no
//! recompute. This module derives that dirty set.
//!
//! The unit of tracking is the Steensgaard **alias partition** (every
//! cluster of the bootstrapped cover descends from exactly one). Each
//! partition gets a content **fingerprint** over everything its analyses
//! can observe:
//!
//! * its sorted member-variable names (membership change ⇒ new identity);
//! * the full statement text of every function its relevant slice
//!   touches, *closed upward over the call graph* — the FSCS climb
//!   (Algorithm 3) walks backward through callers, so a caller body edit
//!   can change a warm query's answer even when the slice lines are
//!   untouched;
//! * the pointer-ness of every slice variable.
//!
//! Partitions also carry **dependency edges** to the partitions owning
//! their slice variables: summary fixpoints consult the cross-partition
//! FSCI oracle for those variables, and the oracle resolves through the
//! owner partition's engine. Dirtiness propagates along these edges to a
//! fixpoint, so a clean partition's entire oracle closure is clean too.
//!
//! Between epochs, [`diff_and_adopt`] matches partitions by *canonical
//! id* (hash of sorted member names), compares fingerprints, closes the
//! changed set under dependencies, and grants the session's persistent
//! store an adoption: entries recorded under the previous whole-program
//! hash stay valid for clusters wholly inside the clean set, sidestepping
//! the store's whole-program gate exactly where it is provably too
//! coarse.

use std::collections::{BTreeMap, HashSet, VecDeque};
use std::hash::Hasher;

use bootstrap_analyses::ClassId;
use bootstrap_ir::{display::stmt_to_string, FuncId, Program, VarId};
use bootstrap_store::{FxHasher64, FORMAT_VERSION};

use crate::cover::ClusterOrigin;
use crate::relevant::relevant_statements_indexed;
use crate::session::Session;

/// A per-partition content snapshot of one program epoch: canonical
/// partition id → fingerprint, plus the epoch's whole-program hash.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PartitionSnapshot {
    /// The whole-program content hash this snapshot was taken at.
    pub program_hash: u64,
    /// Canonical partition id → content fingerprint.
    pub fingerprints: BTreeMap<u64, u64>,
}

/// What an epoch diff concluded: how much of the partition space (and of
/// the cluster cover above it) survives the edit.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DirtyReport {
    /// Alias partitions in the new epoch.
    pub total_partitions: usize,
    /// Partitions whose fingerprint changed (or that are new), closed
    /// transitively under oracle dependencies.
    pub dirty_partitions: usize,
    /// Clusters in the new epoch's cover.
    pub total_clusters: usize,
    /// Clusters descending from a dirty partition (these recompute; the
    /// rest answer from resident engines or adopted store entries).
    pub dirty_clusters: usize,
    /// `true` when an adoption grant was installed on the session's store.
    pub adopted: bool,
}

impl DirtyReport {
    /// `true` when nothing survived (every partition recomputes).
    pub fn all_dirty(&self) -> bool {
        self.dirty_partitions == self.total_partitions
    }
}

/// One partition's derived tracking state within an epoch.
struct Unit {
    class: ClassId,
    fingerprint: u64,
    deps: Vec<u64>,
    /// `true` for units reached only as oracle dependencies (classes with
    /// no pointer members); they fingerprint and propagate but are not
    /// alias partitions of the cover.
    dep_only: bool,
}

/// Takes the partition snapshot of `session`'s epoch, for diffing against
/// a later epoch with [`diff_and_adopt`].
pub fn snapshot(session: &Session<'_>) -> PartitionSnapshot {
    let units = build_units(session);
    PartitionSnapshot {
        program_hash: session.program_content_hash(),
        fingerprints: units
            .into_iter()
            .map(|(id, u)| (id, u.fingerprint))
            .collect(),
    }
}

/// Diffs `session`'s epoch against `prev`, arms the session's persistent
/// store to adopt the previous epoch's entries for clusters proven clean,
/// and reports the dirty footprint.
///
/// Sound because a clean fingerprint pins the partition's members, its
/// relevant slice, and every function body its walks can traverse — so
/// the store's content-addressed cluster key and the recorded artifacts
/// are byte-identical to what a cold run of the new epoch would produce —
/// and dirtiness closes transitively over the partitions whose engines
/// the FSCI oracle consults.
pub fn diff_and_adopt(prev: &PartitionSnapshot, session: &Session<'_>) -> DirtyReport {
    let units = build_units(session);
    // Seed: new identity or changed content.
    let mut dirty: HashSet<u64> = units
        .iter()
        .filter(|(id, u)| prev.fingerprints.get(*id) != Some(&u.fingerprint))
        .map(|(id, _)| *id)
        .collect();
    // Propagate along dependency edges to a fixpoint.
    loop {
        let before = dirty.len();
        for (id, u) in &units {
            if !dirty.contains(id) && u.deps.iter().any(|d| dirty.contains(d)) {
                dirty.insert(*id);
            }
        }
        if dirty.len() == before {
            break;
        }
    }

    let clean: HashSet<ClassId> = units
        .iter()
        .filter(|(id, _)| !dirty.contains(*id))
        .map(|(_, u)| u.class)
        .collect();
    let dirty_classes: HashSet<ClassId> = units
        .iter()
        .filter(|(id, _)| dirty.contains(*id))
        .map(|(_, u)| u.class)
        .collect();

    let partitions: Vec<&Unit> = units.values().filter(|u| !u.dep_only).collect();
    let total_partitions = partitions.len();
    let dirty_partitions = partitions
        .iter()
        .filter(|u| dirty_classes.contains(&u.class))
        .count();

    let clusters = session.cover().clusters();
    let total_clusters = clusters.len();
    let dirty_clusters = clusters
        .iter()
        .filter(|c| match cluster_class(&c.origin) {
            Some(class) => dirty_classes.contains(&class),
            // A whole-program cluster has no partition boundary to hide
            // behind: dirty unless nothing changed at all.
            None => !dirty_classes.is_empty(),
        })
        .count();

    let adopted = !clean.is_empty() && session.adopt_previous_epoch(prev.program_hash, clean);
    DirtyReport {
        total_partitions,
        dirty_partitions,
        total_clusters,
        dirty_clusters,
        adopted,
    }
}

/// The parent alias partition of a cluster, if it has one.
fn cluster_class(origin: &ClusterOrigin) -> Option<ClassId> {
    match origin {
        ClusterOrigin::Steensgaard(class) => Some(*class),
        ClusterOrigin::Andersen { partition, .. } | ClusterOrigin::OneFlow { partition, .. } => {
            Some(*partition)
        }
        ClusterOrigin::WholeProgram => None,
    }
}

/// Builds the epoch's tracking units: every alias partition, plus every
/// class reached as an oracle dependency, fingerprinted and linked.
fn build_units(session: &Session<'_>) -> BTreeMap<u64, Unit> {
    let program = session.program();
    let steens = session.steens();
    let mut units: BTreeMap<u64, Unit> = BTreeMap::new();
    let mut seen: HashSet<ClassId> = HashSet::new();
    let mut queue: VecDeque<(ClassId, bool)> = steens
        .alias_partitions(program)
        .into_iter()
        .map(|(class, _)| (class, false))
        .collect();
    seen.extend(queue.iter().map(|(c, _)| *c));

    while let Some((class, dep_only)) = queue.pop_front() {
        let members = unit_members(session, class);
        if members.is_empty() {
            continue;
        }
        let id = canonical_id(program, &members);
        let rel = relevant_statements_indexed(program, steens, session.relevant_index(), &members);

        // Close the slice's function set upward over the call graph: the
        // climb visits callers, whose bodies feed the fingerprint.
        let mut funcs: Vec<FuncId> = rel.funcs().collect();
        let mut func_seen: HashSet<FuncId> = funcs.iter().copied().collect();
        let mut i = 0;
        while i < funcs.len() {
            for caller_loc in session.callers_of(funcs[i]) {
                if func_seen.insert(caller_loc.func) {
                    funcs.push(caller_loc.func);
                }
            }
            i += 1;
        }

        let mut h = FxHasher64::default();
        h.write_u64(u64::from(FORMAT_VERSION));
        let mut names: Vec<&str> = members.iter().map(|&m| program.var(m).name()).collect();
        names.sort_unstable();
        h.write_u64(names.len() as u64);
        for n in names {
            hash_str(&mut h, n);
        }
        let mut slice_vars: Vec<(String, bool)> = rel
            .vars()
            .map(|v| {
                let info = program.var(v);
                (info.name().to_string(), info.is_pointer())
            })
            .collect();
        slice_vars.sort();
        h.write_u64(slice_vars.len() as u64);
        for (name, ptr) in &slice_vars {
            hash_str(&mut h, name);
            h.write_u64(u64::from(*ptr));
        }
        let mut func_texts: Vec<String> = funcs
            .iter()
            .map(|&f| {
                let func = program.func(f);
                let mut text = format!("fn {}({})\n", func.name(), func.params().len());
                for (loc, stmt) in func.locs() {
                    text.push_str(&format!(
                        "{}: {}\n",
                        loc.stmt,
                        stmt_to_string(program, stmt)
                    ));
                }
                text
            })
            .collect();
        func_texts.sort_unstable();
        h.write_u64(func_texts.len() as u64);
        for t in &func_texts {
            hash_str(&mut h, t);
        }

        // Oracle dependencies: the owner partitions of every slice var.
        let mut dep_classes: Vec<ClassId> = rel
            .vars()
            .map(|v| steens.partition_key(v))
            .filter(|&k| k != class)
            .collect();
        dep_classes.sort();
        dep_classes.dedup();
        let mut deps = Vec::with_capacity(dep_classes.len());
        for dep in dep_classes {
            let dep_members = unit_members(session, dep);
            if dep_members.is_empty() {
                continue;
            }
            deps.push(canonical_id(program, &dep_members));
            if seen.insert(dep) {
                queue.push_back((dep, true));
            }
        }

        units.insert(
            id,
            Unit {
                class,
                fingerprint: h.finish(),
                deps,
                dep_only,
            },
        );
    }
    units
}

/// The member set a partition's tiers answer over: the alias partition's
/// pointers when it has any, else the raw Steensgaard class (mirrors the
/// session's tier-member fallback).
fn unit_members(session: &Session<'_>, class: ClassId) -> Vec<VarId> {
    let members = session.partition_members(class);
    if !members.is_empty() {
        return members.to_vec();
    }
    session.steens().members(class).to_vec()
}

/// Epoch-stable partition identity: hash of the sorted member names.
fn canonical_id(program: &Program, members: &[VarId]) -> u64 {
    let mut h = FxHasher64::default();
    let mut names: Vec<&str> = members.iter().map(|&m| program.var(m).name()).collect();
    names.sort_unstable();
    h.write_u64(names.len() as u64);
    for n in names {
        hash_str(&mut h, n);
    }
    h.finish()
}

fn hash_str(h: &mut FxHasher64, s: &str) {
    h.write_u64(s.len() as u64);
    h.write(s.as_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::Config;
    use bootstrap_ir::parse_program;

    const TWO_NETWORKS: &str = "int a; int b; int *x; int *y;
         int *idx(int *q) { return q; }
         int *idy(int *r) { return r; }
         void main() { x = idx(&a); y = idy(&b); }";

    #[test]
    fn snapshot_is_deterministic() {
        let p = parse_program(TWO_NETWORKS).unwrap();
        let s1 = Session::new(&p, Config::default());
        let s2 = Session::new(&p, Config::default());
        assert_eq!(snapshot(&s1), snapshot(&s2));
    }

    #[test]
    fn identical_programs_diff_clean() {
        let p = parse_program(TWO_NETWORKS).unwrap();
        let prev = snapshot(&Session::new(&p, Config::default()));
        let s = Session::new(&p, Config::default());
        let report = diff_and_adopt(&prev, &s);
        assert_eq!(report.dirty_partitions, 0);
        assert_eq!(report.dirty_clusters, 0);
        assert!(report.total_partitions > 0);
        // No store configured: nothing to adopt.
        assert!(!report.adopted);
    }

    #[test]
    fn touched_network_dirties_only_its_partitions() {
        let p1 = parse_program(TWO_NETWORKS).unwrap();
        let prev = snapshot(&Session::new(&p1, Config::default()));
        // Edit only y's network: route it through a fresh variable.
        let p2 = parse_program(
            "int a; int b; int *x; int *y;
             int *idx(int *q) { return q; }
             int *idy(int *r) { int *t; t = r; return t; }
             void main() { x = idx(&a); y = idy(&b); }",
        )
        .unwrap();
        let s2 = Session::new(&p2, Config::default());
        let report = diff_and_adopt(&prev, &s2);
        assert!(report.dirty_partitions > 0, "y's partition must dirty");
        assert!(
            report.dirty_partitions < report.total_partitions,
            "x's untouched network must stay clean ({report:?})"
        );
        assert!(report.dirty_clusters < report.total_clusters);
    }

    #[test]
    fn caller_edit_dirties_callee_partition() {
        // main is a caller of idx; editing main's call structure must
        // dirty x's partition even though idx's body is untouched,
        // because the FSCS climb walks through main.
        let p1 = parse_program(TWO_NETWORKS).unwrap();
        let prev = snapshot(&Session::new(&p1, Config::default()));
        let p2 = parse_program(
            "int a; int b; int *x; int *y;
             int *idx(int *q) { return q; }
             int *idy(int *r) { return r; }
             void main() { x = idx(&b); y = idy(&b); }",
        )
        .unwrap();
        let s2 = Session::new(&p2, Config::default());
        let report = diff_and_adopt(&prev, &s2);
        assert!(report.all_dirty(), "a caller edit reaches every walk");
    }
}
