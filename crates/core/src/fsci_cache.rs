//! A sharded, concurrently readable FSCI points-to cache shared by every
//! analyzer of a [`crate::session::Session`].
//!
//! Only *clean* top-level FSCI computations land here (see
//! [`crate::analyzer::Analyzer::fsci_pts`]): their results are independent
//! of query order and of which thread computed them, so sharing them across
//! worker threads cannot change any answer — it only removes duplicated
//! work when parallel cluster processing asks for the same `(variable,
//! location)` set from several workers.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bootstrap_ir::{Loc, VarId};
use parking_lot::RwLock;

/// Number of independently locked shards. A small power of two: enough to
/// keep a handful of worker threads from serializing on one lock, cheap
/// enough to iterate for stats.
const SHARDS: usize = 16;

type Key = (VarId, Loc);
/// `None` records a computation that degraded (budget exhausted) — also
/// deterministic for a clean run, so also shareable.
type CachedPts = Option<Arc<Vec<VarId>>>;

/// Hit/miss counters for the shared cache (monotonic, process lifetime).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FsciCacheStats {
    /// Lookups answered from the shared cache.
    pub hits: u64,
    /// Lookups that fell through to a fresh computation.
    pub misses: u64,
    /// Entries currently stored.
    pub entries: usize,
}

/// Sharded concurrent map from `(variable, location)` to the FSCI
/// may-points-to set computed for it.
#[derive(Default)]
pub struct SharedFsciCache {
    shards: [RwLock<HashMap<Key, CachedPts>>; SHARDS],
    hits: AtomicU64,
    misses: AtomicU64,
}

impl SharedFsciCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    fn shard(&self, key: &Key) -> &RwLock<HashMap<Key, CachedPts>> {
        // Cheap mix of the two ids; shard count is a power of two.
        let h = (key.0.index() as u64)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(key.1.func.index() as u64)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(key.1.stmt as u64);
        &self.shards[(h >> 56) as usize & (SHARDS - 1)]
    }

    /// Looks up a cached result, bumping the hit/miss counters.
    pub fn get(&self, v: VarId, loc: Loc) -> Option<CachedPts> {
        let key = (v, loc);
        let found = self.shard(&key).read().get(&key).cloned();
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Stores a clean computation's result. Last write wins; concurrent
    /// writers for the same key computed the same value (clean FSCI results
    /// are order-independent), so the race is benign.
    pub fn insert(&self, v: VarId, loc: Loc, pts: CachedPts) {
        let key = (v, loc);
        self.shard(&key).write().insert(key, pts);
    }

    /// A deterministic (sorted) snapshot of every cached entry, for
    /// publishing to the persistent store. Degraded (`None`) results are
    /// included: they are deterministic for a clean run too, and caching
    /// the "budget ran out here" outcome keeps warm and cold answers
    /// identical.
    pub(crate) fn snapshot(&self) -> Vec<(Key, CachedPts)> {
        let mut all: Vec<(Key, CachedPts)> = self
            .shards
            .iter()
            .flat_map(|s| {
                s.read()
                    .iter()
                    .map(|(k, v)| (*k, v.clone()))
                    .collect::<Vec<_>>()
            })
            .collect();
        all.sort_by_key(|(k, _)| *k);
        all
    }

    /// A snapshot of the hit/miss counters and entry count.
    pub fn stats(&self) -> FsciCacheStats {
        FsciCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.shards.iter().map(|s| s.read().len()).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bootstrap_ir::FuncId;

    fn key(i: usize) -> (VarId, Loc) {
        (VarId::new(i), Loc::new(FuncId::new(0), i as u32))
    }

    #[test]
    fn miss_then_hit() {
        let cache = SharedFsciCache::new();
        let (v, loc) = key(1);
        assert!(cache.get(v, loc).is_none());
        cache.insert(v, loc, Some(Arc::new(vec![VarId::new(9)])));
        let got = cache.get(v, loc).expect("cached");
        assert_eq!(got.as_deref().map(|p| p.len()), Some(1));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn negative_results_are_cached_too() {
        let cache = SharedFsciCache::new();
        let (v, loc) = key(2);
        cache.insert(v, loc, None);
        assert_eq!(cache.get(v, loc), Some(None));
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn keys_spread_over_shards() {
        let cache = SharedFsciCache::new();
        for i in 0..256 {
            let (v, loc) = key(i);
            cache.insert(v, loc, None);
        }
        assert_eq!(cache.stats().entries, 256);
        let populated = cache.shards.iter().filter(|s| !s.read().is_empty()).count();
        assert!(populated > 1, "all 256 keys landed in one shard");
    }

    #[test]
    fn concurrent_readers_and_writers() {
        let cache = SharedFsciCache::new();
        std::thread::scope(|scope| {
            for t in 0..4 {
                let cache = &cache;
                scope.spawn(move || {
                    for i in 0..64 {
                        let (v, loc) = key(t * 64 + i);
                        cache.insert(v, loc, Some(Arc::new(vec![VarId::new(i)])));
                        assert!(cache.get(v, loc).is_some());
                    }
                });
            }
        });
        assert_eq!(cache.stats().entries, 256);
    }
}
