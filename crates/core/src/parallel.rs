//! Per-cluster drivers: serial, threaded, and the paper's 5-machine
//! simulation.
//!
//! Clusters can be analyzed independently of each other (§1: "the analysis
//! for each of the subsets can be carried out independently of others
//! thereby allowing us to leverage parallelization"). The threaded driver
//! shards clusters over OS threads with a work-stealing queue; the
//! [`greedy_bins`] helper reproduces the paper's simulated 5-machine
//! distribution (greedy binning by cumulative pointer count, reporting the
//! maximum per-part time).

use std::time::{Duration, Instant};

use crate::budget::AnalysisBudget;
use crate::cover::Cluster;
use crate::session::Session;

/// The result of analyzing one cluster.
#[derive(Clone, Debug)]
pub struct ClusterReport {
    /// The cluster's id within its cover.
    pub cluster_id: usize,
    /// Number of member pointers.
    pub size: usize,
    /// Size of the relevant-statement slice `St_P`.
    pub relevant_stmts: usize,
    /// Number of `(function, target)` summary entries computed.
    pub summary_entries: usize,
    /// Total summary tuples.
    pub summary_tuples: usize,
    /// Wall-clock time for the cluster.
    pub duration: Duration,
    /// Whether the budget ran out before completion.
    pub timed_out: bool,
}

/// Analyzes every cluster serially with one shared analyzer (and therefore
/// a shared FSCI cache).
pub fn process_clusters(
    session: &Session<'_>,
    clusters: &[Cluster],
    steps_per_cluster: u64,
) -> Vec<ClusterReport> {
    let analyzer = session.analyzer();
    clusters
        .iter()
        .map(|c| analyzer.process_cluster(c, AnalysisBudget::steps(steps_per_cluster)))
        .collect()
}

/// Analyzes clusters on `threads` OS threads. Each worker owns a private
/// analyzer (FSCI work may be duplicated across workers; results are
/// unaffected). Reports come back in cluster order.
pub fn process_clusters_parallel(
    session: &Session<'_>,
    clusters: &[Cluster],
    threads: usize,
    steps_per_cluster: u64,
) -> Vec<ClusterReport> {
    let threads = threads.max(1);
    if threads == 1 || clusters.len() <= 1 {
        return process_clusters(session, clusters, steps_per_cluster);
    }
    let (task_tx, task_rx) = crossbeam::channel::unbounded::<usize>();
    let (res_tx, res_rx) = crossbeam::channel::unbounded::<(usize, ClusterReport)>();
    for i in 0..clusters.len() {
        task_tx.send(i).expect("queue open");
    }
    drop(task_tx);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let task_rx = task_rx.clone();
            let res_tx = res_tx.clone();
            scope.spawn(move || {
                let analyzer = session.analyzer();
                while let Ok(i) = task_rx.recv() {
                    let report = analyzer
                        .process_cluster(&clusters[i], AnalysisBudget::steps(steps_per_cluster));
                    if res_tx.send((i, report)).is_err() {
                        break;
                    }
                }
            });
        }
        drop(res_tx);
        let mut out: Vec<Option<ClusterReport>> = vec![None; clusters.len()];
        while let Ok((i, r)) = res_rx.recv() {
            out[i] = Some(r);
        }
        out.into_iter()
            .map(|r| r.expect("every cluster processed"))
            .collect()
    })
}

/// The paper's machine-distribution heuristic: clusters are processed
/// one-by-one, accumulating pointer counts; once a part's cumulative size
/// exceeds `total/parts`, the part is closed. Returns the summed duration
/// of each part (the paper reports the maximum).
pub fn greedy_bins(reports: &[ClusterReport], parts: usize) -> Vec<Duration> {
    let parts = parts.max(1);
    let total: usize = reports.iter().map(|r| r.size).sum();
    let target = total.div_ceil(parts).max(1);
    let mut bins = Vec::new();
    let mut acc_size = 0usize;
    let mut acc_time = Duration::ZERO;
    for r in reports {
        acc_size += r.size;
        acc_time += r.duration;
        if acc_size >= target {
            bins.push(acc_time);
            acc_size = 0;
            acc_time = Duration::ZERO;
        }
    }
    if acc_time > Duration::ZERO || bins.is_empty() {
        bins.push(acc_time);
    }
    bins
}

/// Convenience: the simulated parallel time over `parts` machines — the
/// maximum bin time (what Table 1 reports).
pub fn simulated_parallel_time(reports: &[ClusterReport], parts: usize) -> Duration {
    greedy_bins(reports, parts)
        .into_iter()
        .max()
        .unwrap_or(Duration::ZERO)
}

/// Measures the wall-clock of running `f` (bench helper).
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let t0 = Instant::now();
    let v = f();
    (v, t0.elapsed())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::Config;
    use bootstrap_ir::parse_program;

    fn demo_program() -> bootstrap_ir::Program {
        let mut src = String::new();
        for i in 0..6 {
            src.push_str(&format!("int o{i}; int *p{i};\n"));
        }
        src.push_str("void main() {\n");
        for i in 0..6 {
            src.push_str(&format!("p{i} = &o{i};\n"));
        }
        src.push_str("}\n");
        parse_program(&src).unwrap()
    }

    #[test]
    fn serial_processes_every_cluster() {
        let p = demo_program();
        let s = Session::new(&p, Config::default());
        let clusters = s.cover().clusters().to_vec();
        let reports = process_clusters(&s, &clusters, 1_000_000);
        assert_eq!(reports.len(), clusters.len());
        assert!(reports.iter().all(|r| !r.timed_out));
        assert!(reports.iter().all(|r| r.size >= 1));
    }

    #[test]
    fn parallel_matches_serial_reports() {
        let p = demo_program();
        let s = Session::new(&p, Config::default());
        let clusters = s.cover().clusters().to_vec();
        let serial = process_clusters(&s, &clusters, 1_000_000);
        let parallel = process_clusters_parallel(&s, &clusters, 4, 1_000_000);
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(parallel.iter()) {
            assert_eq!(a.cluster_id, b.cluster_id);
            assert_eq!(a.size, b.size);
            assert_eq!(a.summary_tuples, b.summary_tuples);
            assert_eq!(a.timed_out, b.timed_out);
        }
    }

    #[test]
    fn greedy_bins_cover_all_clusters() {
        let mk = |size, ms| ClusterReport {
            cluster_id: 0,
            size,
            relevant_stmts: 0,
            summary_entries: 0,
            summary_tuples: 0,
            duration: Duration::from_millis(ms),
            timed_out: false,
        };
        let reports = vec![mk(10, 5), mk(10, 5), mk(10, 5), mk(10, 5), mk(10, 5)];
        let bins = greedy_bins(&reports, 5);
        assert_eq!(bins.len(), 5);
        let total: Duration = bins.iter().sum();
        assert_eq!(total, Duration::from_millis(25));
        assert_eq!(
            simulated_parallel_time(&reports, 5),
            Duration::from_millis(5)
        );
    }

    #[test]
    fn greedy_bins_handles_empty_and_single() {
        assert_eq!(greedy_bins(&[], 5).len(), 1);
        let r = vec![ClusterReport {
            cluster_id: 0,
            size: 3,
            relevant_stmts: 0,
            summary_entries: 0,
            summary_tuples: 0,
            duration: Duration::from_millis(7),
            timed_out: false,
        }];
        assert_eq!(simulated_parallel_time(&r, 5), Duration::from_millis(7));
    }
}
