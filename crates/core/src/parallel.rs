//! Per-cluster drivers: serial, work-stealing threaded, and the paper's
//! 5-machine simulation.
//!
//! Clusters can be analyzed independently of each other (§1: "the analysis
//! for each of the subsets can be carried out independently of others
//! thereby allowing us to leverage parallelization"). The threaded driver
//! gives each worker its own deque seeded in [`lpt_order`] stripes; an
//! idle worker steals from the tail of a sibling's deque, so a straggler
//! cluster (or a retry) no longer serializes the pool the way the old
//! static binning did. [`steal_schedule`] models that schedule from
//! measured per-cluster durations; [`greedy_bins`] is retained as the
//! paper's *static* contiguous binning (an upper bound on the makespan the
//! stealing pool achieves, reported for Table-1 comparability).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::analyzer::Analyzer;
use crate::cover::Cluster;
use crate::degrade::{classify_panic, DegradeReason, PanicClass};
use crate::intern::Interner;
use crate::session::Session;

/// The result of analyzing one cluster.
#[derive(Clone, Debug)]
pub struct ClusterReport {
    /// The cluster's id within its cover.
    pub cluster_id: usize,
    /// Number of member pointers.
    pub size: usize,
    /// Size of the relevant-statement slice `St_P`.
    pub relevant_stmts: usize,
    /// Number of `(function, target)` summary entries computed.
    pub summary_entries: usize,
    /// Total summary tuples.
    pub summary_tuples: usize,
    /// Wall-clock time for the cluster.
    pub duration: Duration,
    /// Why the cluster fell short of a complete FSCS result, if it did
    /// (budget exhaustion, arena overflow, or a panic). `None` means every
    /// summary and every member query completed.
    pub degraded: Option<DegradeReason>,
}

impl ClusterReport {
    /// A report for a cluster that produced no usable engine counters —
    /// its analysis panicked or its worker vanished.
    fn stub(cluster: &Cluster, duration: Duration, reason: DegradeReason) -> Self {
        ClusterReport {
            cluster_id: cluster.id,
            size: cluster.members.len(),
            relevant_stmts: 0,
            summary_entries: 0,
            summary_tuples: 0,
            duration,
            degraded: Some(reason),
        }
    }
}

/// Runs one cluster under a panic guard. Returns the report plus whether
/// the analyzer was poisoned (the caller must replace it before reusing
/// it: a panic can leave partially-fixpointed summaries behind).
fn run_cluster_guarded(
    session: &Session<'_>,
    az: &Analyzer<'_>,
    cluster: &Cluster,
    steps: u64,
) -> (ClusterReport, bool) {
    let budget = session.config().cluster_budget(steps, cluster.id);
    let t0 = Instant::now();
    match catch_unwind(AssertUnwindSafe(|| az.process_cluster(cluster, budget))) {
        Ok(report) => (report, false),
        Err(payload) => {
            let class = classify_panic(payload.as_ref());
            az.poison(class);
            let reason = DegradeReason::Panicked { class };
            (ClusterReport::stub(cluster, t0.elapsed(), reason), true)
        }
    }
}

/// One retry for a panicked or arena-full cluster: a fresh analyzer over a
/// private arena with doubled id capacity, isolated from the session's
/// shared interner (siblings keep theirs untouched). Deterministic
/// injected faults re-fire here, so a fault-injected cluster converges to
/// a degraded report instead of flapping.
fn retry_cluster(session: &Session<'_>, cluster: &Cluster, steps: u64) -> ClusterReport {
    let arena = Arc::new(Interner::with_max_ids(
        session.config().cond_cap,
        session.interner().max_ids().saturating_mul(2),
    ));
    let az = session.analyzer_with_arena(arena);
    run_cluster_guarded(session, &az, cluster, steps).0
}

/// Whether a degraded first attempt earns the one retry: panics and arena
/// overflow can be cured by fresh state and a bigger arena; a blown step
/// or wall budget cannot.
fn retryable(degraded: Option<DegradeReason>) -> bool {
    matches!(
        degraded,
        Some(DegradeReason::ArenaFull | DegradeReason::Panicked { .. })
    )
}

/// Analyzes every cluster serially with one shared analyzer (and therefore
/// a shared FSCI cache). Each cluster is panic-guarded: a panicking or
/// arena-full cluster is retried once on a fresh analyzer with a
/// doubled-capacity private arena, and if it still fails only that
/// cluster's report is degraded — siblings are unaffected.
pub fn process_clusters(
    session: &Session<'_>,
    clusters: &[Cluster],
    steps_per_cluster: u64,
) -> Vec<ClusterReport> {
    let mut analyzer = session.analyzer();
    let mut out = Vec::with_capacity(clusters.len());
    for c in clusters {
        let (mut report, poisoned) = run_cluster_guarded(session, &analyzer, c, steps_per_cluster);
        if poisoned {
            analyzer = session.analyzer();
        }
        if retryable(report.degraded) {
            report = retry_cluster(session, c, steps_per_cluster);
        }
        out.push(report);
    }
    out
}

/// Largest-processing-time-first schedule: cluster indices in descending
/// member-count order (ties broken by ascending index, so the schedule is
/// deterministic). Per-cluster cost grows super-linearly with member count,
/// so starting the big clusters first minimizes the makespan — a small
/// cluster arriving last pads the tail by little, a big one by a lot.
pub fn lpt_order(clusters: &[Cluster]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..clusters.len()).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(clusters[i].members.len()), i));
    order
}

/// Counters for one worker of a work-stealing run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Clusters this worker analyzed.
    pub tasks: usize,
    /// Of those, clusters taken from another worker's deque.
    pub steals: usize,
    /// Time spent inside cluster analysis (including retries), as opposed
    /// to idling in the steal loop.
    pub busy: Duration,
}

/// Scheduler-level counters from one [`process_clusters_parallel_with_stats`]
/// run: per-worker task/steal/busy numbers plus the pool's wall-clock.
#[derive(Clone, Debug, Default)]
pub struct StealStats {
    /// One entry per worker thread.
    pub workers: Vec<WorkerStats>,
    /// Wall-clock for the whole pool (spawn to last join).
    pub wall: Duration,
}

impl StealStats {
    /// Total clusters taken from a sibling's deque.
    pub fn total_steals(&self) -> usize {
        self.workers.iter().map(|w| w.steals).sum()
    }

    /// Pool utilization in `[0, 1]`: summed busy time over
    /// `workers × wall`. On a single hardware thread the OS serializes the
    /// workers, so this measures scheduling overhead, not speedup.
    pub fn utilization(&self) -> f64 {
        let busy: Duration = self.workers.iter().map(|w| w.busy).sum();
        let capacity = self.wall.as_secs_f64() * self.workers.len().max(1) as f64;
        if capacity == 0.0 {
            0.0
        } else {
            (busy.as_secs_f64() / capacity).min(1.0)
        }
    }
}

/// Analyzes clusters on `threads` OS threads with work stealing. Each
/// worker owns a deque seeded with every `threads`-th cluster of
/// [`lpt_order`] (striping spreads the big clusters across workers); the
/// owner drains its deque head (largest first) and an idle worker steals
/// from the *tail* of the next busy sibling, picking up the cheap clusters
/// a straggler would otherwise hold hostage. Each worker owns its own
/// analyzer, but all of them consult the session's shared FSCI cache
/// ([`Session::fsci_cache_stats`] counts the sharing). Reports come back
/// in cluster order regardless of which worker ran what, so output is
/// deterministic even though the schedule is not.
///
/// Fault isolation matches the serial driver: every cluster is
/// panic-guarded and retried once (fresh analyzer, doubled private arena)
/// on panic or arena overflow; a worker whose analyzer was poisoned
/// replaces it and keeps draining. A retry only delays the one worker that
/// hit it — its remaining queue is stolen by the others. Every cluster
/// slot always gets a report — if a worker vanishes without delivering one
/// (which the panic guard should make impossible), the slot is filled with
/// a [`DegradeReason::Panicked`] stub tagged [`PanicClass::WorkerLost`]
/// rather than silently dropped or turned into a driver panic.
pub fn process_clusters_parallel_with_stats(
    session: &Session<'_>,
    clusters: &[Cluster],
    threads: usize,
    steps_per_cluster: u64,
) -> (Vec<ClusterReport>, StealStats) {
    let threads = threads.max(1);
    if threads == 1 || clusters.len() <= 1 {
        let t0 = Instant::now();
        let reports = process_clusters(session, clusters, steps_per_cluster);
        let stats = StealStats {
            workers: vec![WorkerStats {
                tasks: reports.len(),
                steals: 0,
                busy: reports.iter().map(|r| r.duration).sum(),
            }],
            wall: t0.elapsed(),
        };
        return (reports, stats);
    }
    let workers: Vec<crossbeam::deque::Worker<usize>> = (0..threads)
        .map(|_| crossbeam::deque::Worker::new_fifo())
        .collect();
    let stealers: Vec<crossbeam::deque::Stealer<usize>> =
        workers.iter().map(|w| w.stealer()).collect();
    for (k, i) in lpt_order(clusters).into_iter().enumerate() {
        workers[k % threads].push(i);
    }
    let (res_tx, res_rx) = crossbeam::channel::unbounded::<(usize, ClusterReport)>();
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        let handles: Vec<_> = workers
            .into_iter()
            .enumerate()
            .map(|(id, local)| {
                let stealers = stealers.clone();
                let res_tx = res_tx.clone();
                scope.spawn(move || {
                    let mut stats = WorkerStats::default();
                    let mut analyzer = session.analyzer();
                    loop {
                        // Own deque first; otherwise scan the siblings
                        // (starting past ourselves so thieves spread out).
                        let (i, stolen) = match local.pop() {
                            Some(i) => (i, false),
                            None => {
                                let mut found = None;
                                for off in 1..threads {
                                    let victim = (id + off) % threads;
                                    if let Some(i) = stealers[victim].steal().success() {
                                        found = Some(i);
                                        break;
                                    }
                                }
                                match found {
                                    Some(i) => (i, true),
                                    // Every deque empty: tasks never spawn
                                    // tasks, so no work can appear again.
                                    None => break,
                                }
                            }
                        };
                        stats.tasks += 1;
                        stats.steals += usize::from(stolen);
                        let start = Instant::now();
                        let (mut report, poisoned) = run_cluster_guarded(
                            session,
                            &analyzer,
                            &clusters[i],
                            steps_per_cluster,
                        );
                        if poisoned {
                            analyzer = session.analyzer();
                        }
                        if retryable(report.degraded) {
                            report = retry_cluster(session, &clusters[i], steps_per_cluster);
                        }
                        stats.busy += start.elapsed();
                        // A closed result channel means the collector is
                        // gone; keep draining so sibling sends do not back
                        // up, but there is no one left to report to.
                        let _ = res_tx.send((i, report));
                    }
                    stats
                })
            })
            .collect();
        drop(res_tx);
        let mut out: Vec<Option<ClusterReport>> = vec![None; clusters.len()];
        while let Ok((i, r)) = res_rx.recv() {
            out[i] = Some(r);
        }
        let worker_stats: Vec<WorkerStats> = handles
            .into_iter()
            .map(|h| h.join().unwrap_or_default())
            .collect();
        let reports = out
            .into_iter()
            .enumerate()
            .map(|(i, r)| {
                r.unwrap_or_else(|| {
                    ClusterReport::stub(
                        &clusters[i],
                        Duration::ZERO,
                        DegradeReason::Panicked {
                            class: PanicClass::WorkerLost,
                        },
                    )
                })
            })
            .collect();
        (
            reports,
            StealStats {
                workers: worker_stats,
                wall: t0.elapsed(),
            },
        )
    })
}

/// [`process_clusters_parallel_with_stats`] without the scheduler counters.
pub fn process_clusters_parallel(
    session: &Session<'_>,
    clusters: &[Cluster],
    threads: usize,
    steps_per_cluster: u64,
) -> Vec<ClusterReport> {
    process_clusters_parallel_with_stats(session, clusters, threads, steps_per_cluster).0
}

/// The paper's *static* machine-distribution heuristic, kept for Table-1
/// comparability: clusters are processed one-by-one, accumulating pointer
/// counts; once a part's cumulative size exceeds `total/parts`, the part
/// is closed. Returns the summed duration of each part. Because the parts
/// are contiguous and fixed up front, the maximum bin is an *upper* bound
/// on what the work-stealing pool achieves — use [`steal_schedule`] /
/// [`simulated_parallel_time`] for the schedule the live driver runs.
pub fn greedy_bins(reports: &[ClusterReport], parts: usize) -> Vec<Duration> {
    let parts = parts.max(1);
    let total: usize = reports.iter().map(|r| r.size).sum();
    let target = total.div_ceil(parts).max(1);
    let mut bins = Vec::new();
    let mut acc_size = 0usize;
    let mut acc_time = Duration::ZERO;
    for r in reports {
        acc_size += r.size;
        acc_time += r.duration;
        if acc_size >= target {
            bins.push(acc_time);
            acc_size = 0;
            acc_time = Duration::ZERO;
        }
    }
    if acc_time > Duration::ZERO || bins.is_empty() {
        bins.push(acc_time);
    }
    bins
}

/// Models the work-stealing pool over measured per-cluster durations: a
/// greedy list schedule in longest-processing-time order (ties by cluster
/// index), each cluster going to the earliest-free worker. This is the
/// steady state an idle-steals-from-busy pool converges to — a worker
/// only idles when every deque is empty — and is deterministic, unlike
/// the live pool's actual task placement. Returns per-worker busy times;
/// the makespan is the maximum entry.
pub fn steal_schedule(reports: &[ClusterReport], workers: usize) -> Vec<Duration> {
    let workers = workers.max(1);
    let mut order: Vec<usize> = (0..reports.len()).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(reports[i].duration), i));
    let mut loads = vec![Duration::ZERO; workers];
    for i in order {
        let w = (0..workers)
            .min_by_key(|&k| loads[k])
            .expect("workers >= 1");
        loads[w] += reports[i].duration;
    }
    loads
}

/// The simulated parallel time over `parts` machines under the
/// work-stealing schedule model ([`steal_schedule`]) — the makespan the
/// pool converges to given the measured per-cluster durations. (The
/// paper's Table 1 reports the same quantity for its static 5-machine
/// split; [`greedy_bins`] reproduces that older, looser model.)
pub fn simulated_parallel_time(reports: &[ClusterReport], parts: usize) -> Duration {
    steal_schedule(reports, parts)
        .into_iter()
        .max()
        .unwrap_or(Duration::ZERO)
}

/// Measures the wall-clock of running `f` (bench helper).
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let t0 = Instant::now();
    let v = f();
    (v, t0.elapsed())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::Config;
    use bootstrap_ir::parse_program;

    fn demo_program() -> bootstrap_ir::Program {
        let mut src = String::new();
        for i in 0..6 {
            src.push_str(&format!("int o{i}; int *p{i};\n"));
        }
        src.push_str("void main() {\n");
        for i in 0..6 {
            src.push_str(&format!("p{i} = &o{i};\n"));
        }
        src.push_str("}\n");
        parse_program(&src).unwrap()
    }

    #[test]
    fn serial_processes_every_cluster() {
        let p = demo_program();
        let s = Session::new(&p, Config::default());
        let clusters = s.cover().clusters().to_vec();
        let reports = process_clusters(&s, &clusters, 1_000_000);
        assert_eq!(reports.len(), clusters.len());
        assert!(reports.iter().all(|r| r.degraded.is_none()));
        assert!(reports.iter().all(|r| r.size >= 1));
    }

    #[test]
    fn parallel_matches_serial_reports() {
        let p = demo_program();
        let s = Session::new(&p, Config::default());
        let clusters = s.cover().clusters().to_vec();
        let serial = process_clusters(&s, &clusters, 1_000_000);
        let parallel = process_clusters_parallel(&s, &clusters, 4, 1_000_000);
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(parallel.iter()) {
            assert_eq!(a.cluster_id, b.cluster_id);
            assert_eq!(a.size, b.size);
            assert_eq!(a.summary_tuples, b.summary_tuples);
            assert_eq!(a.degraded, b.degraded);
        }
    }

    #[test]
    fn lpt_order_is_descending_by_size() {
        use crate::cover::ClusterOrigin;
        use bootstrap_ir::VarId;
        let mk = |id: usize, n: usize| {
            Cluster::new(
                id,
                ClusterOrigin::WholeProgram,
                (0..n).map(VarId::new).collect(),
            )
        };
        let clusters = vec![mk(0, 2), mk(1, 7), mk(2, 7), mk(3, 1), mk(4, 5)];
        assert_eq!(lpt_order(&clusters), vec![1, 2, 4, 0, 3]);
        let sizes: Vec<usize> = lpt_order(&clusters)
            .into_iter()
            .map(|i| clusters[i].members.len())
            .collect();
        assert!(sizes.windows(2).all(|w| w[0] >= w[1]));
        assert!(lpt_order(&[]).is_empty());
    }

    #[test]
    fn lpt_order_breaks_size_ties_by_cluster_index() {
        use crate::cover::ClusterOrigin;
        use bootstrap_ir::VarId;
        let mk = |id: usize, n: usize| {
            Cluster::new(
                id,
                ClusterOrigin::WholeProgram,
                (0..n).map(VarId::new).collect(),
            )
        };
        // All equal sizes: the order must be exactly the cluster indices,
        // so parallel runs schedule (and report) reproducibly.
        let equal = vec![mk(0, 3), mk(1, 3), mk(2, 3), mk(3, 3)];
        assert_eq!(lpt_order(&equal), vec![0, 1, 2, 3]);
        // Mixed: ties broken by index within each size band, and the
        // result is identical across repeated invocations.
        let mixed = vec![mk(0, 5), mk(1, 9), mk(2, 5), mk(3, 9), mk(4, 5)];
        let first = lpt_order(&mixed);
        assert_eq!(first, vec![1, 3, 0, 2, 4]);
        for _ in 0..10 {
            assert_eq!(lpt_order(&mixed), first);
        }
    }

    #[test]
    fn parallel_workers_publish_to_shared_fsci_cache() {
        // Multi-level pointers force the engine to consult the FSCI oracle
        // while processing clusters; clean results land in the session's
        // shared cache where every worker can see them.
        let p = parse_program(
            "int a; int b; int *x; int *y; int **z; int **w;
             void main() { x = &a; z = &x; w = z; *z = &b; y = *w; }",
        )
        .unwrap();
        let s = Session::new(&p, Config::default());
        let clusters = s.cover().clusters().to_vec();
        let reports = process_clusters_parallel(&s, &clusters, 4, 1_000_000);
        assert_eq!(reports.len(), clusters.len());
        let stats = s.fsci_cache_stats();
        assert!(
            stats.entries > 0,
            "cluster processing should publish FSCI results: {stats:?}"
        );
    }

    #[test]
    fn injected_faults_degrade_only_the_target_cluster() {
        use crate::degrade::{FaultKind, FaultPhase, FaultPlan};
        let p = demo_program();
        let clean_session = Session::new(&p, Config::default());
        let clean_clusters = clean_session.cover().clusters().to_vec();
        let clean = process_clusters(&clean_session, &clean_clusters, 1_000_000);
        assert!(clean.iter().all(|r| r.degraded.is_none()));
        let target = 2usize;
        for kind in FaultKind::ALL {
            let config = Config {
                fault_plan: Some(FaultPlan {
                    phase: FaultPhase::Summaries,
                    kind,
                    at_tick: 1,
                    cluster: Some(target),
                }),
                ..Config::default()
            };
            let s = Session::new(&p, config);
            let clusters = s.cover().clusters().to_vec();
            assert_eq!(clusters.len(), clean_clusters.len());
            for threads in [1usize, 2, 4] {
                let reports = process_clusters_parallel(&s, &clusters, threads, 1_000_000);
                assert_eq!(reports.len(), clean.len());
                for (r, c) in reports.iter().zip(clean.iter()) {
                    if r.cluster_id == target {
                        let reason = r.degraded.unwrap_or_else(|| {
                            panic!("faulted cluster must degrade under {kind:?}")
                        });
                        let expected = match kind {
                            FaultKind::Panic => DegradeReason::Panicked {
                                class: PanicClass::Injected,
                            },
                            FaultKind::Budget => DegradeReason::Injected,
                            FaultKind::ArenaFull => DegradeReason::ArenaFull,
                        };
                        assert_eq!(reason, expected);
                    } else {
                        assert_eq!(
                            r.degraded, c.degraded,
                            "sibling {} affected by {kind:?} fault on {target}",
                            r.cluster_id
                        );
                        assert_eq!(r.size, c.size);
                        assert_eq!(r.relevant_stmts, c.relevant_stmts);
                        assert_eq!(r.summary_entries, c.summary_entries);
                        assert_eq!(r.summary_tuples, c.summary_tuples);
                    }
                }
            }
        }
    }

    #[test]
    fn tiny_arena_degrades_gracefully_with_retry() {
        // A branch-heavy program over a 2-id arena: walks overflow the
        // interner, the driver retries on a doubled private arena, and
        // whatever still overflows degrades as ArenaFull — never a panic,
        // never a lost report.
        let p = parse_program(
            "int a; int b; int c1; int c2; int c3; int *x; int *y;
             void main() {
               if (c1) { x = &a; } else { x = &b; }
               if (c2) { y = x; } else { y = &a; }
               if (c3) { x = y; }
             }",
        )
        .unwrap();
        let config = Config {
            interner_max_ids: 2,
            ..Config::default()
        };
        let s = Session::new(&p, config);
        let clusters = s.cover().clusters().to_vec();
        let reports = process_clusters(&s, &clusters, 1_000_000);
        assert_eq!(reports.len(), clusters.len());
        for r in &reports {
            assert!(
                r.degraded.is_none() || r.degraded == Some(DegradeReason::ArenaFull),
                "unexpected degradation: {:?}",
                r.degraded
            );
        }
    }

    #[test]
    fn stealing_reports_stay_in_deterministic_cluster_order() {
        // Across 1/2/4 threads — and across repeated runs at each width —
        // the work-stealing driver must return the same reports in cluster
        // order; only durations may differ (they depend on the schedule).
        let p = demo_program();
        let s = Session::new(&p, Config::default());
        let clusters = s.cover().clusters().to_vec();
        let baseline = process_clusters(&s, &clusters, 1_000_000);
        for threads in [1usize, 2, 4] {
            for _ in 0..3 {
                let (reports, stats) =
                    process_clusters_parallel_with_stats(&s, &clusters, threads, 1_000_000);
                assert_eq!(reports.len(), baseline.len());
                for (r, b) in reports.iter().zip(baseline.iter()) {
                    assert_eq!(
                        r.cluster_id, b.cluster_id,
                        "order broke at {threads} threads"
                    );
                    assert_eq!(r.size, b.size);
                    assert_eq!(r.relevant_stmts, b.relevant_stmts);
                    assert_eq!(r.summary_entries, b.summary_entries);
                    assert_eq!(r.summary_tuples, b.summary_tuples);
                    assert_eq!(r.degraded, b.degraded);
                }
                // Scheduler accounting: every cluster ran exactly once,
                // somewhere; steals never exceed tasks.
                let expected_workers = if threads == 1 { 1 } else { threads };
                assert_eq!(stats.workers.len(), expected_workers);
                assert_eq!(
                    stats.workers.iter().map(|w| w.tasks).sum::<usize>(),
                    clusters.len()
                );
                for w in &stats.workers {
                    assert!(w.steals <= w.tasks);
                }
            }
        }
    }

    #[test]
    fn steal_schedule_balances_skewed_durations() {
        let mk = |id, ms| ClusterReport {
            cluster_id: id,
            size: 1,
            relevant_stmts: 0,
            summary_entries: 0,
            summary_tuples: 0,
            duration: Duration::from_millis(ms),
            degraded: None,
        };
        // One 8ms straggler plus seven 1ms clusters on 2 workers: the
        // steal model puts the straggler alone (makespan 8ms) while the
        // static contiguous binning can do no better than lump the
        // straggler with neighbours.
        let reports: Vec<ClusterReport> = std::iter::once(mk(0, 8))
            .chain((1..8).map(|i| mk(i, 1)))
            .collect();
        let loads = steal_schedule(&reports, 2);
        assert_eq!(loads.len(), 2);
        let total: Duration = loads.iter().sum();
        assert_eq!(total, Duration::from_millis(15), "all work scheduled");
        assert_eq!(
            simulated_parallel_time(&reports, 2),
            Duration::from_millis(8)
        );
        // LPT classic: 4+3+3+2 on 2 workers -> 6/6.
        let lpt = vec![mk(0, 4), mk(1, 3), mk(2, 3), mk(3, 2)];
        assert_eq!(simulated_parallel_time(&lpt, 2), Duration::from_millis(6));
        assert_eq!(simulated_parallel_time(&[], 4), Duration::ZERO);
        // More workers than work: makespan is the longest single cluster.
        assert_eq!(simulated_parallel_time(&lpt, 16), Duration::from_millis(4));
    }

    #[test]
    fn greedy_bins_cover_all_clusters() {
        let mk = |size, ms| ClusterReport {
            cluster_id: 0,
            size,
            relevant_stmts: 0,
            summary_entries: 0,
            summary_tuples: 0,
            duration: Duration::from_millis(ms),
            degraded: None,
        };
        let reports = vec![mk(10, 5), mk(10, 5), mk(10, 5), mk(10, 5), mk(10, 5)];
        let bins = greedy_bins(&reports, 5);
        assert_eq!(bins.len(), 5);
        let total: Duration = bins.iter().sum();
        assert_eq!(total, Duration::from_millis(25));
        assert_eq!(
            simulated_parallel_time(&reports, 5),
            Duration::from_millis(5)
        );
    }

    #[test]
    fn greedy_bins_handles_empty_and_single() {
        assert_eq!(greedy_bins(&[], 5).len(), 1);
        let r = vec![ClusterReport {
            cluster_id: 0,
            size: 3,
            relevant_stmts: 0,
            summary_entries: 0,
            summary_tuples: 0,
            duration: Duration::from_millis(7),
            degraded: None,
        }];
        assert_eq!(simulated_parallel_time(&r, 5), Duration::from_millis(7));
    }
}
