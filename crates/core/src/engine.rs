//! The interprocedural backward update-sequence engine (Algorithms 4 & 5).
//!
//! For one cluster, the engine answers: *what value may pointer `p` hold
//! just before location `l`?* It walks the control-flow graph backwards
//! from `l`, rewriting the tracked value through each statement exactly as
//! Algorithm 4 does, splicing callee summaries at call-return sites and
//! computing those summaries on demand with a dependency-driven fixpoint
//! that handles recursion (Algorithm 5's SCC processing).
//!
//! Two simplifications relative to the paper's presentation, both
//! behaviour-preserving:
//!
//! * Dereference values (`q` of the form `*s`) are expanded eagerly into
//!   the candidate pointees of `s` — the flow-sensitive points-to set when
//!   the [`PtsOracle`] has one (the dovetailing invariant of Algorithm 2:
//!   pointers higher in the Steensgaard hierarchy are resolved first), and
//!   otherwise the Steensgaard over-approximation with a points-to
//!   constraint recorded per candidate (Definition 8's cyclic case). After
//!   expansion the tracked value is always a plain variable.
//! * Summaries are memoized per `(function, target)` pair and recomputed
//!   when a consulted summary grows, rather than phased per strongly
//!   connected component; the fixpoint is the same.
//!
//! The hot loop is hash-consed: conditions and dead-variable sets live in
//! an [`Interner`] arena, so worklist items are `Copy` tuples of ids and
//! the processed set hashes integers. The pre-interning walk survives
//! verbatim behind [`EngineOptions::uninterned`] as a differential oracle
//! (mirroring the Andersen solver's `naive` flag) and as the baseline the
//! FSCS bench compares against.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

use bootstrap_analyses::SteensgaardResult;
use bootstrap_ir::{CallGraph, CallTarget, FuncId, Loc, Program, Stmt, StmtIdx, VarId};

use crate::budget::{AnalysisBudget, Outcome};
use crate::constraint::{Atom, Cond};
use crate::degrade::{DegradeReason, FaultPhase, FaultPlan};
use crate::fxhash::FxHashSet;
use crate::intern::{ArenaFull, CondId, DeadId, DeadVars, Interner};
use crate::relevant::{
    modifying_functions, relevant_statements_indexed, RelevantIndex, RelevantSet,
};
use crate::summary::{SummaryKey, SummaryStore, SummaryTuple, Value};

/// Unwraps an arena operation inside a budgeted walk. A full arena
/// ([`crate::intern::ArenaFull`]) cannot be recovered from mid-walk —
/// dropping the item would under-approximate a may-analysis — so the
/// budget is marked exhausted with [`DegradeReason::ArenaFull`] and the
/// walk reports [`Outcome::Degraded`], the same sound discard a
/// step-budget expiry produces.
macro_rules! arena_try {
    ($budget:expr, $op:expr) => {
        match $op {
            Ok(v) => v,
            Err(_) => {
                $budget.exhaust(DegradeReason::ArenaFull);
                return $budget.degraded();
            }
        }
    };
}

/// Supplies flow-sensitive, context-insensitive points-to sets for pointers
/// resolved in earlier dovetail phases (higher in the Steensgaard
/// hierarchy). Returning `None` makes the engine fall back to the
/// Steensgaard over-approximation plus constraints — always sound.
pub trait PtsOracle {
    /// The FSCI may-points-to set of `v` just before `loc`, if known.
    fn fsci_pts(&self, v: VarId, loc: Loc) -> Option<Vec<VarId>>;
}

/// An oracle that knows nothing; the engine then relies purely on
/// Steensgaard candidates and constraints.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoOracle;

impl PtsOracle for NoOracle {
    fn fsci_pts(&self, _v: VarId, _loc: Loc) -> Option<Vec<VarId>> {
        None
    }
}

/// Shared immutable context for engine operations.
#[derive(Clone, Copy)]
pub struct EngineCx<'a> {
    /// The program under analysis.
    pub program: &'a Program,
    /// Steensgaard results (hierarchy + fallback candidates).
    pub steens: &'a SteensgaardResult,
    /// The call graph (for the modifying-functions closure).
    pub cg: &'a CallGraph,
    /// Prebuilt index for Algorithm 1.
    pub index: &'a RelevantIndex,
}

/// Construction options for a [`ClusterEngine`].
#[derive(Clone)]
pub struct EngineOptions {
    /// Maximum atoms per constraint conjunction before widening.
    pub cond_cap: usize,
    /// Track branch literals along walks (paper §3, "Path Sensitivity").
    pub path_sensitive: bool,
    /// Run the pre-interning walk (structural `Cond`/dead-set worklist
    /// items, no memo tables) — the differential oracle and bench baseline,
    /// mirroring `SolverOptions::naive` on the Andersen side.
    pub uninterned: bool,
    /// Share this arena (typically the session's) instead of creating a
    /// private one. Ignored — a private arena is used — if its widening cap
    /// differs from `cond_cap`.
    pub arena: Option<Arc<Interner>>,
    /// Deterministic fault injection: an unscoped
    /// [`FaultPhase::Summaries`] plan arms the summary-fixpoint budget
    /// (cluster-scoped plans are armed by the cluster drivers, which know
    /// their slot ids).
    pub fault: Option<FaultPlan>,
}

impl Default for EngineOptions {
    fn default() -> Self {
        Self {
            cond_cap: 8,
            path_sensitive: false,
            uninterned: false,
            arena: None,
            fault: None,
        }
    }
}

/// The per-cluster analysis engine.
///
/// # Examples
///
/// ```
/// use bootstrap_core::budget::AnalysisBudget;
/// use bootstrap_core::engine::{ClusterEngine, EngineCx, NoOracle};
///
/// let p = bootstrap_ir::parse_program(
///     "int a; int *x; void main() { x = &a; }",
/// )
/// .unwrap();
/// let st = bootstrap_analyses::steensgaard::analyze(&p);
/// let cg = bootstrap_ir::CallGraph::build(&p);
/// let index = bootstrap_core::relevant::RelevantIndex::build(&p, &st);
/// let cx = EngineCx { program: &p, steens: &st, cg: &cg, index: &index };
/// let x = p.var_named("x").unwrap();
/// let mut engine = ClusterEngine::new(cx, vec![x], 8);
/// let main = p.func(p.func_named("main").unwrap());
/// let sources = engine
///     .local_sources(cx, x, main.exit(), &NoOracle, &mut AnalysisBudget::unlimited())
///     .unwrap();
/// // x = &a on the only path: one source, the address of a.
/// assert_eq!(sources.len(), 1);
/// ```
pub struct ClusterEngine {
    members: Vec<VarId>,
    relevant: RelevantSet,
    modifying: HashSet<FuncId>,
    summaries: SummaryStore,
    /// Reverse dependencies: key -> summaries that consulted it.
    deps: HashMap<SummaryKey, HashSet<SummaryKey>>,
    cond_cap: usize,
    /// Track branch literals along walks (paper §3, "Path Sensitivity").
    path_sensitive: bool,
    /// Run the structural (pre-interning) walk instead of the id walk.
    uninterned: bool,
    /// Hash-consing arena for conditions and dead sets (shared with the
    /// session's other engines, or private).
    arena: Arc<Interner>,
    /// Unscoped summary-phase fault plan (see [`EngineOptions::fault`]).
    fault: Option<FaultPlan>,
    /// Per-function, per-statement *forced* branch literals: literals that
    /// every entry-to-statement path establishes (a forward must-dataflow;
    /// computed lazily in path-sensitive mode). Conjoined onto terminals,
    /// they carry the branch context *above* the point where a value is
    /// produced, while the walk itself collects the literals below it.
    reach_conds: HashMap<FuncId, Vec<Vec<Atom>>>,
    /// Walk steps performed (for instrumentation).
    steps: u64,
}

/// One backward-walk result before interprocedural resolution. Conditions
/// are interned ids in both walk modes (the uninterned oracle interns at
/// this boundary) so the fixpoint and the summary store are shared.
#[derive(Debug)]
struct WalkOut {
    results: Vec<(Value, CondId)>,
    missing: Vec<SummaryKey>,
    consulted: Vec<SummaryKey>,
}

impl ClusterEngine {
    /// Builds the engine for a cluster: runs Algorithm 1 for the relevant
    /// statements and closes the modifying-function set over the call
    /// graph.
    pub fn new(cx: EngineCx<'_>, members: Vec<VarId>, cond_cap: usize) -> Self {
        Self::with_engine_options(
            cx,
            members,
            EngineOptions {
                cond_cap,
                ..EngineOptions::default()
            },
        )
    }

    /// Like [`ClusterEngine::new`], optionally enabling the path-sensitive
    /// mode: the backward walk then records branch literals (for
    /// function-local, address-not-taken condition variables) in each
    /// tuple's constraint and prunes syntactically infeasible paths.
    pub fn with_options(
        cx: EngineCx<'_>,
        members: Vec<VarId>,
        cond_cap: usize,
        path_sensitive: bool,
    ) -> Self {
        Self::with_engine_options(
            cx,
            members,
            EngineOptions {
                cond_cap,
                path_sensitive,
                ..EngineOptions::default()
            },
        )
    }

    /// Builds the engine with full [`EngineOptions`] control (shared arena,
    /// the uninterned oracle walk).
    pub fn with_engine_options(
        cx: EngineCx<'_>,
        members: Vec<VarId>,
        options: EngineOptions,
    ) -> Self {
        let relevant = relevant_statements_indexed(cx.program, cx.steens, cx.index, &members);
        let modifying = modifying_functions(cx.program, cx.cg, &relevant);
        let arena = match &options.arena {
            Some(shared) if shared.cap() == options.cond_cap => Arc::clone(shared),
            _ => Arc::new(Interner::new(options.cond_cap)),
        };
        Self {
            members,
            relevant,
            modifying,
            summaries: SummaryStore::new(),
            deps: HashMap::new(),
            cond_cap: options.cond_cap,
            path_sensitive: options.path_sensitive,
            uninterned: options.uninterned,
            arena,
            fault: options.fault,
            reach_conds: HashMap::new(),
            steps: 0,
        }
    }

    /// The forced branch literals of every statement of `f` (path-sensitive
    /// mode): a forward must-analysis meeting literal sets over predecessor
    /// edges, with kills at definitions of the branch variable and at calls
    /// (for globals).
    fn reach_conds_for(&mut self, cx: EngineCx<'_>, f: FuncId) -> &Vec<Vec<Atom>> {
        if !self.reach_conds.contains_key(&f) {
            let func = cx.program.func(f);
            let n = func.body().len();
            let mut state: Vec<Option<std::collections::BTreeSet<Atom>>> = vec![None; n];
            state[0] = Some(std::collections::BTreeSet::new());
            let mut worklist = vec![0 as StmtIdx];
            while let Some(m) = worklist.pop() {
                let mut out = state[m as usize].clone().expect("visited");
                // Kills.
                match func.stmt(m) {
                    Stmt::Call(_) | Stmt::Spawn(_) => {
                        out.retain(|a| {
                            a.branch_var()
                                .map(|v| cx.program.var(v).kind().owner().is_some())
                                .unwrap_or(true)
                        });
                    }
                    stmt => {
                        if let Some(d) = stmt.direct_def() {
                            out.retain(|a| a.branch_var() != Some(d));
                        }
                    }
                }
                for &succ in func.succs(m) {
                    let mut contribution = out.clone();
                    if let Some(lit) = self.edge_literal(cx, func, m, succ) {
                        contribution.insert(lit);
                    }
                    let new = match &state[succ as usize] {
                        None => contribution,
                        Some(prev) => prev.intersection(&contribution).cloned().collect(),
                    };
                    if state[succ as usize].as_ref() != Some(&new) {
                        state[succ as usize] = Some(new);
                        worklist.push(succ);
                    }
                }
            }
            let table: Vec<Vec<Atom>> = state
                .into_iter()
                .map(|s| s.map(|set| set.into_iter().collect()).unwrap_or_default())
                .collect();
            self.reach_conds.insert(f, table);
        }
        &self.reach_conds[&f]
    }

    /// Conjoins the forced literals of statement `m` onto `cond`, skipping
    /// literals on variables the walk has already crossed a definition of
    /// (path-sensitive mode); `None` means the combination is infeasible.
    fn with_reach_cond(
        &mut self,
        cx: EngineCx<'_>,
        f: FuncId,
        m: StmtIdx,
        cond: &Cond,
        dead: &DeadVars,
    ) -> Option<Cond> {
        if !self.path_sensitive {
            return Some(cond.clone());
        }
        let atoms = self.reach_conds_for(cx, f)[m as usize].clone();
        let mut out = cond.clone();
        for a in atoms {
            if let Some(v) = a.branch_var() {
                if dead.is_dead(v, cx.program) {
                    continue;
                }
            }
            out = out.and(a, self.cond_cap)?;
        }
        Some(out)
    }

    /// The interned counterpart of [`ClusterEngine::with_reach_cond`]:
    /// conjunctions go through the arena's memo tables. `Ok(None)` means
    /// the combination is infeasible; `Err` propagates a full arena.
    fn with_reach_cond_id(
        &mut self,
        cx: EngineCx<'_>,
        f: FuncId,
        m: StmtIdx,
        cond: CondId,
        dead: &DeadVars,
    ) -> Result<Option<CondId>, ArenaFull> {
        if !self.path_sensitive {
            return Ok(Some(cond));
        }
        let atoms = self.reach_conds_for(cx, f)[m as usize].clone();
        let mut out = cond;
        for a in atoms {
            if let Some(v) = a.branch_var() {
                if dead.is_dead(v, cx.program) {
                    continue;
                }
            }
            match self.arena.and_atom(out, a)? {
                Some(c) => out = c,
                None => return Ok(None),
            }
        }
        Ok(Some(out))
    }

    /// The cluster members.
    pub fn members(&self) -> &[VarId] {
        &self.members
    }

    /// The relevant-statement slice (`V_P`, `St_P`).
    pub fn relevant(&self) -> &RelevantSet {
        &self.relevant
    }

    /// Functions whose execution may affect aliases of the cluster.
    pub fn modifying(&self) -> &HashSet<FuncId> {
        &self.modifying
    }

    /// The summaries computed so far.
    pub fn summaries(&self) -> &SummaryStore {
        &self.summaries
    }

    /// The hash-consing arena this engine interns into.
    pub fn interner(&self) -> &Arc<Interner> {
        &self.arena
    }

    /// Engine steps performed so far (instrumentation).
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// All computed summaries with conditions resolved to structural form,
    /// sorted — id-free, so snapshots from engines with different arenas
    /// (e.g. interned vs uninterned oracle) compare directly.
    pub fn summary_snapshot(&self) -> Vec<(SummaryKey, Vec<(Value, Cond)>)> {
        let mut entries: Vec<(SummaryKey, Vec<(Value, Cond)>)> = self
            .summaries
            .iter()
            .map(|(key, tuples)| {
                let mut resolved: Vec<(Value, Cond)> = tuples
                    .iter()
                    .map(|(v, c)| (*v, (*self.arena.resolve(*c)).clone()))
                    .collect();
                resolved.sort();
                (*key, resolved)
            })
            .collect();
        entries.sort_by_key(|(key, _)| *key);
        entries
    }

    /// Splices a summary entry loaded from the persistent store into this
    /// engine: each structural condition is re-interned into the engine's
    /// arena (the id-remap — `CondId`s are arena-relative, the structural
    /// form is position-independent) and the entry then short-circuits
    /// [`ClusterEngine::compute_all_summaries`], which skips keys already
    /// present. Only *final* fixpoint values may be installed; the store
    /// publishes exclusively from engines whose fixpoint completed clean.
    ///
    /// # Errors
    ///
    /// Propagates [`ArenaFull`]; the caller stops splicing and the engine
    /// computes the remaining summaries organically.
    pub(crate) fn install_summary(
        &mut self,
        key: SummaryKey,
        tuples: &[(Value, Cond)],
    ) -> Result<(), ArenaFull> {
        let mut interned = Vec::with_capacity(tuples.len());
        for (v, c) in tuples {
            interned.push((*v, self.arena.cond(c)?));
        }
        self.summaries.put(key, interned);
        Ok(())
    }

    /// The values `p` may hold just before `loc`, each with its constraint
    /// (Definition 8). `Value::Ptr(q)` results mean "the value `q` held at
    /// the entry of `loc`'s function" — the caller-splicing points used by
    /// the interprocedural drivers.
    pub fn local_sources(
        &mut self,
        cx: EngineCx<'_>,
        p: VarId,
        loc: Loc,
        oracle: &dyn PtsOracle,
        budget: &mut AnalysisBudget,
    ) -> Outcome<Vec<(Value, Cond)>> {
        if loc.stmt == 0 {
            return Outcome::Done(vec![(Value::Ptr(p), Cond::top())]);
        }
        loop {
            let out = match self.walk(cx, loc.func, loc.stmt, p, oracle, budget) {
                Outcome::Done(o) => o,
                Outcome::Degraded(r) => return Outcome::Degraded(r),
            };
            if out.missing.is_empty() {
                // Resolve ids at the public boundary and dedup structurally:
                // the output is identical whichever walk mode produced it
                // (and independent of arena id assignment order).
                let resolved: Vec<(Value, Cond)> = out
                    .results
                    .into_iter()
                    .map(|(v, c)| (v, (*self.arena.resolve(c)).clone()))
                    .collect();
                return Outcome::Done(dedup(resolved));
            }
            let missing = out.missing.clone();
            if let Outcome::Degraded(r) = self.compute_summaries(cx, missing, oracle, budget) {
                return Outcome::Degraded(r);
            }
        }
    }

    /// The exit summary tuples of `f` for `target`, computing them (and any
    /// callee summaries) on demand.
    pub fn exit_summary(
        &mut self,
        cx: EngineCx<'_>,
        f: FuncId,
        target: VarId,
        oracle: &dyn PtsOracle,
        budget: &mut AnalysisBudget,
    ) -> Outcome<Vec<SummaryTuple>> {
        let key = (f, target);
        if !self.summaries.contains(&key) {
            if let Outcome::Degraded(r) = self.compute_summaries(cx, vec![key], oracle, budget) {
                return Outcome::Degraded(r);
            }
        }
        let mut resolved: Vec<(Value, Cond)> = self
            .summaries
            .get(&key)
            .unwrap_or(&[])
            .iter()
            .map(|(value, cond)| (*value, (*self.arena.resolve(*cond)).clone()))
            .collect();
        resolved.sort();
        let tuples = resolved
            .into_iter()
            .map(|(value, cond)| SummaryTuple {
                target,
                value,
                cond,
            })
            .collect();
        Outcome::Done(tuples)
    }

    /// Computes (to a fixpoint) the exit summaries for every function in
    /// `St_P` and every cluster member — the per-cluster work unit whose
    /// cost Table 1 reports.
    pub fn compute_all_summaries(
        &mut self,
        cx: EngineCx<'_>,
        oracle: &dyn PtsOracle,
        budget: &mut AnalysisBudget,
    ) -> Outcome<()> {
        if let Some(plan) = self.fault {
            if plan.applies_to(FaultPhase::Summaries, None) {
                budget.arm_fault(plan.kind, plan.at_tick);
            }
        }
        // Enumerate (function, member) pairs lazily: the unclustered
        // baseline runs this with *all* pointers as members, where
        // materializing the full key set upfront would dwarf memory long
        // before the budget expires.
        let mut funcs: Vec<FuncId> = self.relevant.funcs().collect();
        // The relevant-function set hashes nondeterministically; fix the
        // visit order so runs (and budget-bounded prefixes) are repeatable.
        funcs.sort_unstable();
        for f in funcs {
            for i in 0..self.members.len() {
                if !budget.tick() {
                    return budget.degraded();
                }
                let key = (f, self.members[i]);
                if self.summaries.contains(&key) {
                    continue;
                }
                if let Outcome::Degraded(r) = self.compute_summaries(cx, vec![key], oracle, budget)
                {
                    return Outcome::Degraded(r);
                }
            }
        }
        Outcome::Done(())
    }

    /// Dependency-driven summary fixpoint (Algorithm 5's recursion
    /// handling).
    fn compute_summaries(
        &mut self,
        cx: EngineCx<'_>,
        initial: Vec<SummaryKey>,
        oracle: &dyn PtsOracle,
        budget: &mut AnalysisBudget,
    ) -> Outcome<()> {
        let mut dirty: VecDeque<SummaryKey> = VecDeque::new();
        let mut queued: HashSet<SummaryKey> = HashSet::new();
        for key in initial {
            self.summaries.ensure(key);
            if queued.insert(key) {
                dirty.push_back(key);
            }
        }
        while let Some(key) = dirty.pop_front() {
            queued.remove(&key);
            let (f, target) = key;
            let exit = cx.program.func(f).exit().stmt;
            let out = match self.walk(cx, f, exit, target, oracle, budget) {
                Outcome::Done(o) => o,
                Outcome::Degraded(r) => return Outcome::Degraded(r),
            };
            for &k in &out.consulted {
                self.deps.entry(k).or_default().insert(key);
            }
            if out.missing.is_empty() {
                // Summaries are reused across call sites and frames, where
                // the callee's local path literals would be meaningless (or
                // worse, wrongly correlated across frames): strip them.
                let results = if self.path_sensitive {
                    let mut stripped = Vec::with_capacity(out.results.len());
                    for (v, c) in out.results {
                        stripped.push((v, arena_try!(budget, self.arena.drop_branch(c))));
                    }
                    stripped
                } else {
                    out.results
                };
                if self.summaries.put(key, self.dedup_ids(results)) {
                    if let Some(dependents) = self.deps.get(&key) {
                        // Requeue in sorted order: the dependent set hashes
                        // nondeterministically and the order decides which
                        // work a bounded budget reaches.
                        let mut dependents: Vec<SummaryKey> = dependents.iter().copied().collect();
                        dependents.sort_unstable();
                        for d in dependents {
                            if queued.insert(d) {
                                dirty.push_back(d);
                            }
                        }
                    }
                }
            } else {
                for k in out.missing {
                    self.summaries.ensure(k);
                    self.deps.entry(k).or_default().insert(key);
                    if queued.insert(k) {
                        dirty.push_back(k);
                    }
                }
                // Re-walk this key once the missing entries exist.
                if queued.insert(key) {
                    dirty.push_back(key);
                }
            }
        }
        Outcome::Done(())
    }

    /// One backward walk inside `f`, starting just before `before` and
    /// tracking `target` — dispatching on the configured walk mode.
    fn walk(
        &mut self,
        cx: EngineCx<'_>,
        f: FuncId,
        before: StmtIdx,
        target: VarId,
        oracle: &dyn PtsOracle,
        budget: &mut AnalysisBudget,
    ) -> Outcome<WalkOut> {
        if self.uninterned {
            self.walk_uninterned(cx, f, before, target, oracle, budget)
        } else {
            self.walk_interned(cx, f, before, target, oracle, budget)
        }
    }

    /// The hash-consed walk: worklist items are `Copy` id tuples, the
    /// processed set hashes four integers, and every condition operation is
    /// a memoized arena call.
    fn walk_interned(
        &mut self,
        cx: EngineCx<'_>,
        f: FuncId,
        before: StmtIdx,
        target: VarId,
        oracle: &dyn PtsOracle,
        budget: &mut AnalysisBudget,
    ) -> Outcome<WalkOut> {
        let func = cx.program.func(f);
        let mut out = WalkOut {
            results: Vec::new(),
            missing: Vec::new(),
            consulted: Vec::new(),
        };
        let mut queue: Vec<(StmtIdx, VarId, CondId, DeadId)> = Vec::new();
        let mut processed: FxHashSet<(StmtIdx, VarId, CondId, DeadId)> = FxHashSet::default();
        if before == 0 {
            out.results.push((Value::Ptr(target), CondId::TOP));
            return Outcome::Done(out);
        }
        for &m in func.preds(before) {
            queue.push((m, target, CondId::TOP, DeadId::EMPTY));
        }
        while let Some((m, x, cond, dead)) = queue.pop() {
            if !budget.tick() {
                return budget.degraded();
            }
            self.steps += 1;
            if !processed.insert((m, x, cond, dead)) {
                continue;
            }
            let loc = Loc::new(f, m);
            // Literals above a crossed definition of their variable refer
            // to the old value: extend the dead set with m's kills before
            // attaching anything from m or above. Dead sets only matter in
            // path-sensitive mode; resolve the (updated) set once per item.
            let (dead, dead_set) = if self.path_sensitive {
                let dead = match func.stmt(m) {
                    Stmt::Call(_) | Stmt::Spawn(_) => {
                        arena_try!(budget, self.arena.kill_globals(dead))
                    }
                    stmt => match stmt.direct_def() {
                        Some(d) => arena_try!(budget, self.arena.kill(dead, d)),
                        None => dead,
                    },
                };
                let resolved = self.arena.resolve_dead(dead);
                (dead, Some(resolved))
            } else {
                (dead, None)
            };
            // Rewrite the tracked value through the statement at m
            // (Algorithm 4), producing continuation and/or terminal steps.
            let mut continues: Vec<(VarId, CondId)> = Vec::new();
            match func.stmt(m) {
                Stmt::Copy { dst, src } => {
                    if *dst == x && self.relevant.contains_stmt(loc) {
                        continues.push((*src, cond));
                    } else {
                        continues.push((x, cond));
                    }
                }
                Stmt::AddrOf { dst, obj } => {
                    if *dst == x && self.relevant.contains_stmt(loc) {
                        let obj = *obj;
                        let reach = arena_try!(
                            budget,
                            self.reach_cond_of(cx, f, m, cond, dead_set.as_deref())
                        );
                        if let Some(c) = reach {
                            out.results.push((Value::Addr(obj), c));
                        }
                    } else {
                        continues.push((x, cond));
                    }
                }
                // A `free` nulls its operand, so for the backward value walk
                // it behaves exactly like an explicit NULL assignment.
                Stmt::Null { dst } | Stmt::Free { dst } => {
                    if *dst == x && self.relevant.contains_stmt(loc) {
                        let reach = arena_try!(
                            budget,
                            self.reach_cond_of(cx, f, m, cond, dead_set.as_deref())
                        );
                        if let Some(c) = reach {
                            out.results.push((Value::Null, c));
                        }
                    } else {
                        continues.push((x, cond));
                    }
                }
                Stmt::Load { dst, src } => {
                    if *dst == x && self.relevant.contains_stmt(loc) {
                        // Expand *src into candidate carriers.
                        for o in self.candidates(cx, *src, loc, oracle) {
                            let atom = Atom::PointsTo {
                                loc,
                                ptr: *src,
                                obj: o,
                            };
                            if let Some(c2) = arena_try!(budget, self.arena.and_atom(cond, atom)) {
                                continues.push((o, c2));
                            }
                        }
                    } else {
                        continues.push((x, cond));
                    }
                }
                Stmt::Store { dst, src } => {
                    if self.relevant.contains_stmt(loc)
                        && self.candidates(cx, *dst, loc, oracle).contains(&x)
                    {
                        let hit = Atom::PointsTo {
                            loc,
                            ptr: *dst,
                            obj: x,
                        };
                        if let Some(c2) = arena_try!(budget, self.arena.and_atom(cond, hit)) {
                            continues.push((*src, c2));
                        }
                        if let Some(c2) =
                            arena_try!(budget, self.arena.and_atom(cond, hit.negated()))
                        {
                            continues.push((x, c2));
                        }
                    } else {
                        continues.push((x, cond));
                    }
                }
                Stmt::Call(call) => match call.target {
                    CallTarget::Direct(g) if self.modifying.contains(&g) => {
                        let key = (g, x);
                        match self.summaries.get(&key) {
                            None => out.missing.push(key),
                            Some(tuples) => {
                                out.consulted.push(key);
                                let tuples: Vec<(Value, CondId)> = tuples.to_vec();
                                for (value, c2) in tuples {
                                    // Summaries grow during the recursion
                                    // fixpoint; charge the budget per tuple
                                    // so one worklist pop cannot do
                                    // unbounded work. A consumed summary
                                    // stands for arbitrary summarised work,
                                    // so this tick also checks the clock.
                                    if !budget.tick_checked() {
                                        return budget.degraded();
                                    }
                                    self.steps += 1;
                                    let Some(cc) =
                                        arena_try!(budget, self.arena.and_cond(cond, c2))
                                    else {
                                        continue;
                                    };
                                    match value {
                                        Value::Ptr(w) => continues.push((w, cc)),
                                        Value::Addr(o) => {
                                            let reach = arena_try!(
                                                budget,
                                                self.reach_cond_of(
                                                    cx,
                                                    f,
                                                    m,
                                                    cc,
                                                    dead_set.as_deref()
                                                )
                                            );
                                            if let Some(c) = reach {
                                                out.results.push((Value::Addr(o), c));
                                            }
                                        }
                                        Value::Null => {
                                            let reach = arena_try!(
                                                budget,
                                                self.reach_cond_of(
                                                    cx,
                                                    f,
                                                    m,
                                                    cc,
                                                    dead_set.as_deref()
                                                )
                                            );
                                            if let Some(c) = reach {
                                                out.results.push((Value::Null, c));
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                    // Non-modifying or unresolved callees cannot affect the
                    // cluster: step over.
                    _ => continues.push((x, cond)),
                },
                // Spawn parameter binding is explicit Copy statements, and
                // lock/unlock never write pointers: the walk steps over them.
                Stmt::Spawn(_) | Stmt::Lock { .. } | Stmt::Unlock { .. } => {
                    continues.push((x, cond))
                }
                Stmt::Return | Stmt::Skip => continues.push((x, cond)),
            }
            for (x2, c2) in continues {
                if m == 0 {
                    out.results.push((Value::Ptr(x2), c2));
                } else {
                    for &m2 in func.preds(m) {
                        let c3 = if self.path_sensitive {
                            match self.edge_literal(cx, func, m2, m) {
                                // Skip stale literals (their variable was
                                // redefined below); conjoin live ones and
                                // prune contradictory paths.
                                Some(atom)
                                    if !dead_set
                                        .as_deref()
                                        .expect("path-sensitive dead set")
                                        .is_dead(
                                            atom.branch_var().expect("edge literal"),
                                            cx.program,
                                        ) =>
                                {
                                    match arena_try!(budget, self.arena.and_atom(c2, atom)) {
                                        Some(c) => c,
                                        None => continue,
                                    }
                                }
                                _ => c2,
                            }
                        } else {
                            c2
                        };
                        queue.push((m2, x2, c3, dead));
                    }
                }
            }
        }
        Outcome::Done(out)
    }

    /// [`ClusterEngine::with_reach_cond_id`] with an already-resolved dead
    /// set (`None` outside path-sensitive mode).
    fn reach_cond_of(
        &mut self,
        cx: EngineCx<'_>,
        f: FuncId,
        m: StmtIdx,
        cond: CondId,
        dead_set: Option<&DeadVars>,
    ) -> Result<Option<CondId>, ArenaFull> {
        match dead_set {
            Some(dead) => self.with_reach_cond_id(cx, f, m, cond, dead),
            None => Ok(Some(cond)),
        }
    }

    /// The pre-interning walk, kept verbatim as the differential oracle:
    /// structural `Cond`/`DeadVars` worklist items, deep-cloned on every
    /// push and processed-set probe, no memo tables. Results are interned
    /// only at the boundary so everything downstream is shared.
    fn walk_uninterned(
        &mut self,
        cx: EngineCx<'_>,
        f: FuncId,
        before: StmtIdx,
        target: VarId,
        oracle: &dyn PtsOracle,
        budget: &mut AnalysisBudget,
    ) -> Outcome<WalkOut> {
        let func = cx.program.func(f);
        let mut results: Vec<(Value, Cond)> = Vec::new();
        let mut out = WalkOut {
            results: Vec::new(),
            missing: Vec::new(),
            consulted: Vec::new(),
        };
        let mut queue: Vec<(StmtIdx, VarId, Cond, DeadVars)> = Vec::new();
        let mut processed: HashSet<(StmtIdx, VarId, Cond, DeadVars)> = HashSet::new();
        if before == 0 {
            out.results.push((Value::Ptr(target), CondId::TOP));
            return Outcome::Done(out);
        }
        for &m in func.preds(before) {
            queue.push((m, target, Cond::top(), DeadVars::default()));
        }
        while let Some((m, x, cond, dead)) = queue.pop() {
            if !budget.tick() {
                return budget.degraded();
            }
            self.steps += 1;
            if !processed.insert((m, x, cond.clone(), dead.clone())) {
                continue;
            }
            let loc = Loc::new(f, m);
            // Literals above a crossed definition of their variable refer
            // to the old value: extend the dead set with m's kills before
            // attaching anything from m or above.
            let dead = if self.path_sensitive {
                match func.stmt(m) {
                    Stmt::Call(_) | Stmt::Spawn(_) => dead.kill_globals(),
                    stmt => match stmt.direct_def() {
                        Some(d) => dead.kill(d),
                        None => dead,
                    },
                }
            } else {
                dead
            };
            // Rewrite the tracked value through the statement at m
            // (Algorithm 4), producing continuation and/or terminal steps.
            let mut continues: Vec<(VarId, Cond)> = Vec::new();
            match func.stmt(m) {
                Stmt::Copy { dst, src } => {
                    if *dst == x && self.relevant.contains_stmt(loc) {
                        continues.push((*src, cond.clone()));
                    } else {
                        continues.push((x, cond.clone()));
                    }
                }
                Stmt::AddrOf { dst, obj } => {
                    if *dst == x && self.relevant.contains_stmt(loc) {
                        if let Some(c) = self.with_reach_cond(cx, f, m, &cond, &dead) {
                            results.push((Value::Addr(*obj), c));
                        }
                    } else {
                        continues.push((x, cond.clone()));
                    }
                }
                // A `free` nulls its operand, so for the backward value walk
                // it behaves exactly like an explicit NULL assignment.
                Stmt::Null { dst } | Stmt::Free { dst } => {
                    if *dst == x && self.relevant.contains_stmt(loc) {
                        if let Some(c) = self.with_reach_cond(cx, f, m, &cond, &dead) {
                            results.push((Value::Null, c));
                        }
                    } else {
                        continues.push((x, cond.clone()));
                    }
                }
                Stmt::Load { dst, src } => {
                    if *dst == x && self.relevant.contains_stmt(loc) {
                        // Expand *src into candidate carriers.
                        for o in self.candidates(cx, *src, loc, oracle) {
                            let atom = Atom::PointsTo {
                                loc,
                                ptr: *src,
                                obj: o,
                            };
                            if let Some(c2) = cond.and(atom, self.cond_cap) {
                                continues.push((o, c2));
                            }
                        }
                    } else {
                        continues.push((x, cond.clone()));
                    }
                }
                Stmt::Store { dst, src } => {
                    if self.relevant.contains_stmt(loc)
                        && self.candidates(cx, *dst, loc, oracle).contains(&x)
                    {
                        let hit = Atom::PointsTo {
                            loc,
                            ptr: *dst,
                            obj: x,
                        };
                        if let Some(c2) = cond.and(hit, self.cond_cap) {
                            continues.push((*src, c2));
                        }
                        if let Some(c2) = cond.and(hit.negated(), self.cond_cap) {
                            continues.push((x, c2));
                        }
                    } else {
                        continues.push((x, cond.clone()));
                    }
                }
                Stmt::Call(call) => match call.target {
                    CallTarget::Direct(g) if self.modifying.contains(&g) => {
                        let key = (g, x);
                        match self.summaries.get(&key) {
                            None => out.missing.push(key),
                            Some(tuples) => {
                                out.consulted.push(key);
                                let tuples: Vec<(Value, Cond)> = tuples
                                    .iter()
                                    .map(|(v, c)| (*v, (*self.arena.resolve(*c)).clone()))
                                    .collect();
                                for (value, c2) in tuples {
                                    // Mirror the interned walk: one tick per
                                    // consumed summary tuple, so both modes
                                    // stay in step parity and bounded (and
                                    // the clock is checked, as interned).
                                    if !budget.tick_checked() {
                                        return budget.degraded();
                                    }
                                    self.steps += 1;
                                    let Some(cc) = cond.and_cond(&c2, self.cond_cap) else {
                                        continue;
                                    };
                                    match value {
                                        Value::Ptr(w) => continues.push((w, cc)),
                                        Value::Addr(o) => {
                                            if let Some(c) =
                                                self.with_reach_cond(cx, f, m, &cc, &dead)
                                            {
                                                results.push((Value::Addr(o), c));
                                            }
                                        }
                                        Value::Null => {
                                            if let Some(c) =
                                                self.with_reach_cond(cx, f, m, &cc, &dead)
                                            {
                                                results.push((Value::Null, c));
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                    // Non-modifying or unresolved callees cannot affect the
                    // cluster: step over.
                    _ => continues.push((x, cond.clone())),
                },
                Stmt::Spawn(_) | Stmt::Lock { .. } | Stmt::Unlock { .. } => {
                    continues.push((x, cond.clone()))
                }
                Stmt::Return | Stmt::Skip => continues.push((x, cond.clone())),
            }
            for (x2, c2) in continues {
                if m == 0 {
                    results.push((Value::Ptr(x2), c2));
                } else {
                    for &m2 in func.preds(m) {
                        let c3 = if self.path_sensitive {
                            match self.edge_literal(cx, func, m2, m) {
                                // Skip stale literals (their variable was
                                // redefined below); conjoin live ones and
                                // prune contradictory paths.
                                Some(atom)
                                    if !dead.is_dead(
                                        atom.branch_var().expect("edge literal"),
                                        cx.program,
                                    ) =>
                                {
                                    match c2.and(atom, self.cond_cap) {
                                        Some(c) => c,
                                        None => continue,
                                    }
                                }
                                _ => c2.clone(),
                            }
                        } else {
                            c2.clone()
                        };
                        queue.push((m2, x2, c3, dead.clone()));
                    }
                }
            }
        }
        out.results = {
            let mut interned = Vec::with_capacity(results.len());
            for (v, c) in results {
                interned.push((v, arena_try!(budget, self.arena.cond(&c))));
            }
            interned
        };
        Outcome::Done(out)
    }

    /// The path literal implied by traversing the CFG edge `from -> to`,
    /// when `from` is a two-way branch testing a stable (function-local,
    /// address-not-taken) variable: successor 0 is the true arm.
    fn edge_literal(
        &self,
        cx: EngineCx<'_>,
        func: &bootstrap_ir::Function,
        from: StmtIdx,
        to: StmtIdx,
    ) -> Option<Atom> {
        let var = func.branch_cond(from)?;
        // Literals are tracked only for variables whose writes the walk is
        // guaranteed to cross: address-not-taken variables that are either
        // local to this function or global (globals are additionally
        // havocked at every call, since a callee may write them).
        let owner = cx.program.var(var).kind().owner();
        if cx.index.is_addr_taken(var) || !(owner.is_none() || owner == Some(func.id())) {
            return None;
        }
        let succs = func.succs(from);
        if succs.len() != 2 {
            return None;
        }
        if succs[0] == to {
            Some(Atom::BranchTrue { var })
        } else if succs[1] == to {
            Some(Atom::BranchFalse { var })
        } else {
            None
        }
    }

    /// The candidate pointees of `v` just before `loc`: the oracle's FSCI
    /// set when available (dovetailing), otherwise the members of the
    /// Steensgaard class below `v` (sound fallback; the cyclic case).
    fn candidates(
        &self,
        cx: EngineCx<'_>,
        v: VarId,
        loc: Loc,
        oracle: &dyn PtsOracle,
    ) -> Vec<VarId> {
        if let Some(pts) = oracle.fsci_pts(v, loc) {
            return pts;
        }
        match cx.steens.pointee(cx.steens.class_of(v)) {
            Some(c) => cx.steens.members(c).to_vec(),
            None => Vec::new(),
        }
    }

    /// Id-space dedup with unconditional-subsumption, mirroring [`dedup`]:
    /// interning is canonical, so sorting by id and dropping duplicates
    /// removes exactly the structural duplicates.
    fn dedup_ids(&self, mut results: Vec<(Value, CondId)>) -> Vec<(Value, CondId)> {
        results.sort();
        results.dedup();
        let unconditional: HashSet<Value> = results
            .iter()
            .filter(|(_, c)| self.arena.cond_is_top(*c))
            .map(|(v, _)| *v)
            .collect();
        results.retain(|(v, c)| self.arena.cond_is_top(*c) || !unconditional.contains(v));
        results
    }
}

fn dedup(mut results: Vec<(Value, Cond)>) -> Vec<(Value, Cond)> {
    results.sort();
    results.dedup();
    // If a value is reachable unconditionally, drop its conditional
    // duplicates (they are subsumed).
    let unconditional: HashSet<Value> = results
        .iter()
        .filter(|(_, c)| c.is_top())
        .map(|(v, _)| *v)
        .collect();
    results.retain(|(v, c)| c.is_top() || !unconditional.contains(v));
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use bootstrap_analyses::steensgaard;
    use bootstrap_ir::parse_program;

    struct Setup {
        program: Program,
        steens: SteensgaardResult,
        cg: CallGraph,
        index: RelevantIndex,
    }

    impl Setup {
        fn new(src: &str) -> Self {
            let program = parse_program(src).unwrap();
            let steens = steensgaard::analyze(&program);
            let cg = CallGraph::build(&program);
            let index = RelevantIndex::build(&program, &steens);
            Self {
                program,
                steens,
                cg,
                index,
            }
        }

        fn cx(&self) -> EngineCx<'_> {
            EngineCx {
                program: &self.program,
                steens: &self.steens,
                cg: &self.cg,
                index: &self.index,
            }
        }

        fn v(&self, n: &str) -> VarId {
            self.program.var_named(n).unwrap()
        }

        fn exit_of(&self, f: &str) -> Loc {
            self.program
                .func(self.program.func_named(f).unwrap())
                .exit()
        }
    }

    fn sources_of(setup: &Setup, members: &[&str], p: &str, loc: Loc) -> Vec<(Value, Cond)> {
        let members: Vec<VarId> = members.iter().map(|n| setup.v(n)).collect();
        let mut engine = ClusterEngine::new(setup.cx(), members, 8);
        engine
            .local_sources(
                setup.cx(),
                setup.v(p),
                loc,
                &NoOracle,
                &mut AnalysisBudget::unlimited(),
            )
            .unwrap()
    }

    #[test]
    fn straight_line_addr() {
        let s = Setup::new("int a; int *x; void main() { x = &a; }");
        let res = sources_of(&s, &["x"], "x", s.exit_of("main"));
        assert_eq!(res, vec![(Value::Addr(s.v("a")), Cond::top())]);
    }

    #[test]
    fn kill_is_respected_flow_sensitively() {
        // x = &a; x = &b: at exit only &b survives.
        let s = Setup::new("int a; int b; int *x; void main() { x = &a; x = &b; }");
        let res = sources_of(&s, &["x"], "x", s.exit_of("main"));
        assert_eq!(res, vec![(Value::Addr(s.v("b")), Cond::top())]);
    }

    #[test]
    fn branches_merge_both_values() {
        let s = Setup::new(
            "int a; int b; int *x; int c;
             void main() { if (c) { x = &a; } else { x = &b; } }",
        );
        let res = sources_of(&s, &["x"], "x", s.exit_of("main"));
        let values: Vec<Value> = res.iter().map(|(v, _)| *v).collect();
        assert!(values.contains(&Value::Addr(s.v("a"))));
        assert!(values.contains(&Value::Addr(s.v("b"))));
        assert_eq!(values.len(), 2);
    }

    #[test]
    fn unassigned_pointer_keeps_entry_value() {
        let s = Setup::new("int a; int *x; int *y; void main() { x = &a; }");
        let res = sources_of(&s, &["y"], "y", s.exit_of("main"));
        assert_eq!(res, vec![(Value::Ptr(s.v("y")), Cond::top())]);
    }

    #[test]
    fn null_kill() {
        let s = Setup::new("int a; int *x; void main() { x = &a; free(x); }");
        let res = sources_of(&s, &["x"], "x", s.exit_of("main"));
        assert_eq!(res, vec![(Value::Null, Cond::top())]);
    }

    #[test]
    fn copy_chain_resolves_to_origin() {
        let s = Setup::new(
            "int a; int *x; int *y; int *z;
             void main() { x = &a; y = x; z = y; }",
        );
        let res = sources_of(&s, &["x", "y", "z"], "z", s.exit_of("main"));
        assert_eq!(res, vec![(Value::Addr(s.v("a")), Cond::top())]);
    }

    #[test]
    fn loop_assignments_terminate_and_merge() {
        let s = Setup::new(
            "int a; int b; int *x; int c;
             void main() { x = &a; while (c) { x = &b; } }",
        );
        let res = sources_of(&s, &["x"], "x", s.exit_of("main"));
        let values: Vec<Value> = res.iter().map(|(v, _)| *v).collect();
        assert!(values.contains(&Value::Addr(s.v("a"))));
        assert!(values.contains(&Value::Addr(s.v("b"))));
    }

    #[test]
    fn figure4_store_forks_under_constraint() {
        // Paper Figure 4: 1a: b = c; 2a: x = &a; 3a: y = &b; 4a: *x = b.
        let s = Setup::new(
            "int *a; int *b; int *c; int **x; int **y;
             void main() { b = c; x = &a; y = &b; *x = b; }",
        );
        let res = sources_of(&s, &["a", "b", "c"], "a", s.exit_of("main"));
        // Through the store (x -> a): value comes from b, maximally
        // completed back to c's entry value; around the store: a's own
        // entry value.
        let values: Vec<&Value> = res.iter().map(|(v, _)| v).collect();
        assert!(
            values.contains(&&Value::Ptr(s.v("c"))),
            "maximal completion reaches c: {res:?}"
        );
        assert!(values.contains(&&Value::Ptr(s.v("a"))));
        // The through-store result must carry the x -> a constraint.
        let (_, cond) = res
            .iter()
            .find(|(v, _)| *v == Value::Ptr(s.v("c")))
            .unwrap();
        assert!(!cond.is_top());
        assert!(cond.to_string().contains("->"));
    }

    #[test]
    fn figure5_foo_summary_is_x_gets_w() {
        let s = Setup::new(
            "int **x; int **u; int **w; int **z;
             int *a; int *b; int *c; int *d;
             void foo() { *x = d; a = b; x = w; }
             void main() { x = &c; w = u; foo(); z = x; *z = b; }",
        );
        let members = vec![s.v("x"), s.v("u"), s.v("w"), s.v("z")];
        let mut engine = ClusterEngine::new(s.cx(), members, 8);
        let foo = s.program.func_named("foo").unwrap();
        let tuples = engine
            .exit_summary(
                s.cx(),
                foo,
                s.v("x"),
                &NoOracle,
                &mut AnalysisBudget::unlimited(),
            )
            .unwrap();
        // The paper's summary tuple (x, 3b, w, true).
        assert_eq!(tuples.len(), 1);
        assert_eq!(tuples[0].value, Value::Ptr(s.v("w")));
        assert!(tuples[0].cond.is_top());
    }

    #[test]
    fn figure5_z_resolves_to_u_through_call() {
        let s = Setup::new(
            "int **x; int **u; int **w; int **z;
             int *a; int *b; int *c; int *d;
             void foo() { *x = d; a = b; x = w; }
             void main() { x = &c; w = u; foo(); z = x; *z = b; }",
        );
        let res = sources_of(&s, &["x", "u", "w", "z"], "z", s.exit_of("main"));
        // The paper's maximally complete update sequence
        // w = u, [x = w], z = x gives the tuple (z, 6a, u, true).
        assert_eq!(res, vec![(Value::Ptr(s.v("u")), Cond::top())]);
    }

    #[test]
    fn call_to_non_modifying_function_is_skipped() {
        let s = Setup::new(
            "int a; int *x; int *other;
             void bar() { other = other; }
             void main() { x = &a; bar(); }",
        );
        let res = sources_of(&s, &["x"], "x", s.exit_of("main"));
        assert_eq!(res, vec![(Value::Addr(s.v("a")), Cond::top())]);
    }

    #[test]
    fn callee_assignment_flows_through_summary() {
        let s = Setup::new(
            "int a; int *x;
             void set() { x = &a; }
             void main() { set(); }",
        );
        let res = sources_of(&s, &["x"], "x", s.exit_of("main"));
        assert_eq!(res, vec![(Value::Addr(s.v("a")), Cond::top())]);
    }

    #[test]
    fn conditional_callee_yields_identity_and_update() {
        let s = Setup::new(
            "int a; int *x; int c;
             void set() { if (c) { x = &a; } }
             void main() { set(); }",
        );
        let res = sources_of(&s, &["x"], "x", s.exit_of("main"));
        let values: Vec<Value> = res.iter().map(|(v, _)| *v).collect();
        assert!(values.contains(&Value::Addr(s.v("a"))));
        assert!(
            values.contains(&Value::Ptr(s.v("x"))),
            "identity path: {values:?}"
        );
    }

    #[test]
    fn recursion_reaches_fixpoint() {
        let s = Setup::new(
            "int a; int b; int *x; int c;
             void rec() { if (c) { rec(); x = &a; } else { x = &b; } }
             void main() { rec(); }",
        );
        let res = sources_of(&s, &["x"], "x", s.exit_of("main"));
        let values: Vec<Value> = res.iter().map(|(v, _)| *v).collect();
        assert!(values.contains(&Value::Addr(s.v("a"))));
        assert!(values.contains(&Value::Addr(s.v("b"))));
    }

    #[test]
    fn recursive_call_kills_prior_assignment() {
        // x = &a before the recursive call is always overwritten by the
        // call's own assignments — the engine must not resurrect it.
        let s = Setup::new(
            "int a; int b; int *x; int c;
             void rec() { if (c) { x = &a; rec(); } else { x = &b; } }
             void main() { rec(); }",
        );
        let res = sources_of(&s, &["x"], "x", s.exit_of("main"));
        let values: Vec<Value> = res.iter().map(|(v, _)| *v).collect();
        assert!(values.contains(&Value::Addr(s.v("b"))));
        assert!(
            !values.contains(&Value::Addr(s.v("a"))),
            "&a is dead on every path: {values:?}"
        );
    }

    #[test]
    fn mutual_recursion_reaches_fixpoint() {
        let s = Setup::new(
            "int a; int b; int *x; int c;
             void even() { if (c) { x = &a; odd(); } }
             void odd() { if (c) { x = &b; even(); } }
             void main() { even(); }",
        );
        let res = sources_of(&s, &["x"], "x", s.exit_of("main"));
        let values: Vec<Value> = res.iter().map(|(v, _)| *v).collect();
        assert!(values.contains(&Value::Addr(s.v("a"))));
        assert!(values.contains(&Value::Addr(s.v("b"))));
        assert!(values.contains(&Value::Ptr(s.v("x"))));
    }

    #[test]
    fn budget_timeout_propagates() {
        let s = Setup::new(
            "int a; int *x; int c;
             void main() { while (c) { x = &a; x = x; } }",
        );
        let members = vec![s.v("x")];
        let mut engine = ClusterEngine::new(s.cx(), members, 8);
        let r = engine.local_sources(
            s.cx(),
            s.v("x"),
            s.exit_of("main"),
            &NoOracle,
            &mut AnalysisBudget::steps(2),
        );
        assert_eq!(r, Outcome::Degraded(DegradeReason::BudgetSteps));
    }

    #[test]
    fn store_through_unrelated_pointer_ignored() {
        // *z writes only y's class, never x's.
        let s = Setup::new(
            "int a; int b; int *x; int *y; int **z;
             void main() { x = &a; z = &y; *z = &b; }",
        );
        let res = sources_of(&s, &["x"], "x", s.exit_of("main"));
        assert_eq!(res, vec![(Value::Addr(s.v("a")), Cond::top())]);
    }

    #[test]
    fn load_expands_to_carrier_values() {
        let s = Setup::new(
            "int a; int *x; int *y; int **z;
             void main() { x = &a; z = &x; y = *z; }",
        );
        let res = sources_of(&s, &["x", "y"], "y", s.exit_of("main"));
        // y = *z with z -> x: y's value is x's value = &a, under z -> x.
        assert!(
            res.iter().any(|(v, _)| *v == Value::Addr(s.v("a"))),
            "{res:?}"
        );
    }

    /// Both walk modes over the same cluster must produce identical
    /// summary sets and identical local sources.
    fn assert_walks_agree(src: &str, members: &[&str], path_sensitive: bool) {
        let s = Setup::new(src);
        let members: Vec<VarId> = members.iter().map(|n| s.v(n)).collect();
        let mk = |uninterned: bool| {
            let mut e = ClusterEngine::with_engine_options(
                s.cx(),
                members.clone(),
                EngineOptions {
                    cond_cap: 8,
                    path_sensitive,
                    uninterned,
                    ..EngineOptions::default()
                },
            );
            e.compute_all_summaries(s.cx(), &NoOracle, &mut AnalysisBudget::unlimited())
                .unwrap();
            e
        };
        let interned = mk(false);
        let oracle = mk(true);
        assert_eq!(
            interned.summary_snapshot(),
            oracle.summary_snapshot(),
            "walk modes disagree (path_sensitive={path_sensitive})"
        );
    }

    #[test]
    fn interned_walk_matches_uninterned_oracle() {
        let src = "int *a; int *b; int *c; int **x; int **y;
             void main() { b = c; x = &a; y = &b; *x = b; }";
        assert_walks_agree(src, &["a", "b", "c"], false);
        let rec = "int a; int b; int *x; int c;
             void rec() { if (c) { x = &a; rec(); } else { x = &b; } }
             void main() { rec(); }";
        assert_walks_agree(rec, &["x"], false);
        assert_walks_agree(rec, &["x"], true);
        let calls = "int **x; int **u; int **w; int **z;
             int *a; int *b; int *c; int *d;
             void foo() { *x = d; a = b; x = w; }
             void main() { x = &c; w = u; foo(); z = x; *z = b; }";
        assert_walks_agree(calls, &["x", "u", "w", "z"], false);
        assert_walks_agree(calls, &["x", "u", "w", "z"], true);
    }

    #[test]
    fn shared_arena_is_adopted_and_mismatched_cap_rejected() {
        let s = Setup::new("int a; int *x; void main() { x = &a; }");
        let shared = Arc::new(Interner::new(8));
        let e = ClusterEngine::with_engine_options(
            s.cx(),
            vec![s.v("x")],
            EngineOptions {
                cond_cap: 8,
                arena: Some(Arc::clone(&shared)),
                ..EngineOptions::default()
            },
        );
        assert!(Arc::ptr_eq(e.interner(), &shared));
        // A cap mismatch falls back to a private arena (memo results would
        // otherwise widen at the wrong cap).
        let e2 = ClusterEngine::with_engine_options(
            s.cx(),
            vec![s.v("x")],
            EngineOptions {
                cond_cap: 4,
                arena: Some(Arc::clone(&shared)),
                ..EngineOptions::default()
            },
        );
        assert!(!Arc::ptr_eq(e2.interner(), &shared));
        assert_eq!(e2.interner().cap(), 4);
    }

    #[test]
    fn arena_capacity_exhaustion_degrades_instead_of_panicking() {
        let s = Setup::new(
            "int a; int *x; int *y; int **z;
             void main() { x = &a; z = &x; y = *z; }",
        );
        // Slot 0 (⊤) uses the only id: the first points-to constraint the
        // load expansion interns hits the cap.
        let tiny = Arc::new(Interner::with_max_ids(8, 1));
        let mut engine = ClusterEngine::with_engine_options(
            s.cx(),
            vec![s.v("x"), s.v("y")],
            EngineOptions {
                cond_cap: 8,
                arena: Some(tiny),
                ..EngineOptions::default()
            },
        );
        let mut budget = AnalysisBudget::unlimited();
        let r = engine.local_sources(s.cx(), s.v("y"), s.exit_of("main"), &NoOracle, &mut budget);
        assert_eq!(r, Outcome::Degraded(DegradeReason::ArenaFull));
        assert_eq!(
            budget.reason(),
            Some(DegradeReason::ArenaFull),
            "arena overflow exhausts the budget"
        );
    }

    #[test]
    fn engine_reports_interner_activity() {
        let s = Setup::new(
            "int a; int *x; int *y; int **z;
             void main() { x = &a; z = &x; y = *z; }",
        );
        let members = vec![s.v("x"), s.v("y")];
        let mut engine = ClusterEngine::new(s.cx(), members, 8);
        engine
            .compute_all_summaries(s.cx(), &NoOracle, &mut AnalysisBudget::unlimited())
            .unwrap();
        let stats = engine.interner().stats();
        assert!(stats.conds >= 1, "top is always interned: {stats:?}");
        assert!(
            stats.hits + stats.misses > 0,
            "loads intern constraints: {stats:?}"
        );
    }
}
