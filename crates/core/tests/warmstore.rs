//! End-to-end tests of the persistent warm-start path: a second session
//! over the same program and cache directory must answer every query
//! identically to the cold run while skipping (nearly) all FSCS solve
//! work, and any corruption of the on-disk entries must degrade to a
//! silent recompute — never a panic, never a stale answer.

use std::fs;
use std::path::PathBuf;

use bootstrap_core::parallel::process_clusters_parallel;
use bootstrap_core::{
    Config, FaultKind, FaultPhase, FaultPlan, LadderAnswer, Precision, Session, StoreConfig,
};
use bootstrap_ir::{parse_program, VarId};

/// A program big enough that summaries, interprocedural splicing and the
/// FSCI oracle all do real work: pointer chains through an identity
/// function, a global setter, and a double-pointer store.
fn source() -> String {
    let mut src = String::from("int *g; int **zz;\nint *id(int *q) { return q; }\n");
    src.push_str("void set(int *v) { g = v; zz = &g; *zz = v; }\n");
    for i in 0..10 {
        src.push_str(&format!("int a{i}; int *p{i};\n"));
    }
    src.push_str("void main() {\n");
    for i in 0..10 {
        src.push_str(&format!("p{i} = id(&a{i});\nset(p{i});\n"));
    }
    src.push_str("}\n");
    src
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "bootstrap_warmstore_{name}_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn config_with_store(dir: &PathBuf) -> Config {
    Config {
        store: Some(StoreConfig::new(dir.clone())),
        ..Config::default()
    }
}

/// Runs every pointer-at-main-exit query through the ladder and collects
/// the answers (order fixed by the session's pointer list).
fn query_all(session: &Session<'_>) -> Vec<(VarId, LadderAnswer)> {
    let az = session.analyzer();
    let exit = session.program().entry().unwrap().exit();
    let answers = session
        .pointers()
        .iter()
        .map(|&p| (p, session.query_at_loc(&az, p, exit)))
        .collect();
    az.publish_store();
    answers
}

fn assert_same_answers(cold: &[(VarId, LadderAnswer)], warm: &[(VarId, LadderAnswer)]) {
    assert_eq!(cold.len(), warm.len());
    for ((pc, ac), (pw, aw)) in cold.iter().zip(warm) {
        assert_eq!(pc, pw);
        assert_eq!(ac.sources, aw.sources, "sources differ for {pc:?}");
        assert_eq!(ac.precision, aw.precision, "precision differs for {pc:?}");
    }
}

#[test]
fn warm_run_matches_cold_and_skips_the_solve() {
    let program = parse_program(&source()).unwrap();
    let dir = temp_dir("roundtrip");

    let cold_session = Session::new(&program, config_with_store(&dir));
    let cold = query_all(&cold_session);
    let cold_counters = cold_session.store_counters();
    assert!(cold_counters.misses > 0, "cold run must miss");
    assert_eq!(cold_counters.hits, 0);
    let cold_steps = cold_session.phase_stats().fscs.steps;
    assert!(cold_steps > 0, "cold run must do FSCS work");
    assert!(cold.iter().all(|(_, a)| a.precision == Precision::Fscs));
    drop(cold_session);

    let warm_session = Session::new(&program, config_with_store(&dir));
    let warm = query_all(&warm_session);
    let warm_counters = warm_session.store_counters();
    assert!(
        warm_counters.hits > 0,
        "warm run must hit: {warm_counters:?}"
    );
    assert_eq!(warm_counters.invalidated, 0);
    let warm_steps = warm_session.phase_stats().fscs.steps;
    assert!(
        warm_steps * 10 <= cold_steps,
        "warm run should skip >=90% of FSCS steps (cold {cold_steps}, warm {warm_steps})"
    );
    assert_same_answers(&cold, &warm);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn every_corruption_mode_degrades_to_a_silent_recompute() {
    let program = parse_program(&source()).unwrap();
    let dir = temp_dir("corrupt");

    let cold = {
        let s = Session::new(&program, config_with_store(&dir));
        query_all(&s)
    };
    let entries: Vec<PathBuf> = fs::read_dir(&dir)
        .unwrap()
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "bsa"))
        .collect();
    assert!(!entries.is_empty(), "cold run must publish entries");

    // Mode 1: truncate every entry to half.
    for p in &entries {
        let raw = fs::read(p).unwrap();
        fs::write(p, &raw[..raw.len() / 2]).unwrap();
    }
    let s = Session::new(&program, config_with_store(&dir));
    let truncated = query_all(&s);
    assert!(s.store_counters().invalidated > 0);
    assert_same_answers(&cold, &truncated);
    drop(s);

    // The recompute overwrote the truncated entries: warm again.
    let s = Session::new(&program, config_with_store(&dir));
    let rewarmed = query_all(&s);
    assert!(s.store_counters().hits > 0, "overwrite must restore hits");
    assert_same_answers(&cold, &rewarmed);
    drop(s);

    // Mode 2: garbage bytes.
    for p in &entries {
        fs::write(p, vec![0x5au8; 97]).unwrap();
    }
    let s = Session::new(&program, config_with_store(&dir));
    assert_same_answers(&cold, &query_all(&s));
    assert!(s.store_counters().invalidated > 0);
    drop(s);

    // Mode 3: wrong magic (flip the first byte of an otherwise valid
    // entry).
    for p in &entries {
        let mut raw = fs::read(p).unwrap();
        raw[4] ^= 0xff;
        fs::write(p, raw).unwrap();
    }
    let s = Session::new(&program, config_with_store(&dir));
    assert_same_answers(&cold, &query_all(&s));
    assert!(s.store_counters().invalidated > 0);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn option_mismatch_recomputes_instead_of_reusing() {
    let program = parse_program(&source()).unwrap();
    let dir = temp_dir("options");
    {
        let s = Session::new(&program, config_with_store(&dir));
        let _ = query_all(&s);
    }
    // A different result-affecting option derives different keys *and* a
    // different options hash: nothing from the first run may be reused.
    let changed = Config {
        cond_cap: 4,
        ..config_with_store(&dir)
    };
    let s = Session::new(&program, changed.clone());
    let answers = query_all(&s);
    assert_eq!(s.store_counters().hits, 0, "no cross-option reuse");
    drop(s);
    // And a fresh cold session with the same changed options agrees.
    let dir2 = temp_dir("options_ref");
    let reference = Session::new(
        &program,
        Config {
            store: Some(StoreConfig::new(dir2.clone())),
            ..changed
        },
    );
    assert_same_answers(&query_all(&reference), &answers);
    let _ = fs::remove_dir_all(&dir);
    let _ = fs::remove_dir_all(&dir2);
}

#[test]
fn program_change_with_equal_slice_is_gated_by_the_program_hash() {
    // The second program keeps every original cluster's relevant slice
    // byte-identical (it only adds an unrelated function), so the content
    // keys collide — exactly the case the whole-program hash must catch,
    // because summaries may consult cross-partition FSCI facts.
    let p1 = parse_program(&source()).unwrap();
    let mut src2 = source();
    src2.push_str("int extra; int *pe;\nvoid other() { pe = &extra; }\n");
    let p2 = parse_program(&src2).unwrap();
    let dir = temp_dir("gate");
    {
        let s = Session::new(&p1, config_with_store(&dir));
        let _ = query_all(&s);
    }
    let s = Session::new(&p2, config_with_store(&dir));
    let warm = query_all(&s);
    let counters = s.store_counters();
    assert!(
        counters.invalidated > 0,
        "colliding keys from a different program must demote: {counters:?}"
    );
    drop(s);
    // The answers equal a from-scratch run over the changed program.
    let dir2 = temp_dir("gate_ref");
    let reference = Session::new(&p2, config_with_store(&dir2));
    assert_same_answers(&query_all(&reference), &warm);
    let _ = fs::remove_dir_all(&dir);
    let _ = fs::remove_dir_all(&dir2);
}

#[test]
fn warm_parallel_drivers_match_cold_across_thread_counts() {
    let program = parse_program(&source()).unwrap();
    let dir = temp_dir("parallel");

    let cold_session = Session::new(&program, config_with_store(&dir));
    let clusters = cold_session.cover().clusters().to_vec();
    let cold_reports = process_clusters_parallel(&cold_session, &clusters, 1, u64::MAX);
    let cold_answers = query_all(&cold_session);
    assert!(cold_reports.iter().all(|r| r.degraded.is_none()));
    drop(cold_session);

    for threads in [1, 2, 4] {
        let s = Session::new(&program, config_with_store(&dir));
        let reports = process_clusters_parallel(&s, &clusters, threads, u64::MAX);
        assert!(s.store_counters().hits > 0, "{threads} threads must hit");
        for (c, w) in cold_reports.iter().zip(&reports) {
            assert_eq!(c.cluster_id, w.cluster_id);
            assert_eq!(c.summary_entries, w.summary_entries, "{threads} threads");
            assert_eq!(c.summary_tuples, w.summary_tuples, "{threads} threads");
            assert!(w.degraded.is_none());
        }
        assert_same_answers(&cold_answers, &query_all(&s));
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn store_fault_forces_recompute_and_overwrite() {
    let program = parse_program(&source()).unwrap();
    let dir = temp_dir("fault");
    {
        let s = Session::new(&program, config_with_store(&dir));
        let _ = query_all(&s);
    }
    let faulted_config = Config {
        fault_plan: Some(FaultPlan {
            phase: FaultPhase::Store,
            kind: FaultKind::Panic,
            at_tick: 0,
            cluster: None,
        }),
        ..config_with_store(&dir)
    };
    let cold_reference = {
        let dir2 = temp_dir("fault_ref");
        let s = Session::new(
            &program,
            Config {
                store: Some(StoreConfig::new(dir2.clone())),
                ..Config::default()
            },
        );
        let a = query_all(&s);
        drop(s);
        let _ = fs::remove_dir_all(&dir2);
        a
    };
    let s = Session::new(&program, faulted_config);
    let answers = query_all(&s);
    let counters = s.store_counters();
    assert_eq!(counters.hits, 0, "faulted consults never hit");
    assert!(
        counters.invalidated > 0,
        "present entries count invalidated"
    );
    assert_same_answers(&cold_reference, &answers);
    drop(s);
    // The forced recompute overwrote the entries; a clean session hits.
    let s = Session::new(&program, config_with_store(&dir));
    let _ = query_all(&s);
    assert!(s.store_counters().hits > 0);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn read_only_store_consults_but_never_creates() {
    let program = parse_program(&source()).unwrap();
    let dir = temp_dir("readonly");
    let ro = Config {
        store: Some(StoreConfig {
            read_only: true,
            ..StoreConfig::new(dir.clone())
        }),
        ..Config::default()
    };
    let s = Session::new(&program, ro);
    let _ = query_all(&s);
    assert!(!dir.exists(), "read-only store must not create the dir");
    drop(s);

    // Interner occupancy stays observable after store splices: a warm
    // session's arena is populated by install_summary re-interning.
    let dir = temp_dir("occupancy");
    {
        let s = Session::new(&program, config_with_store(&dir));
        let _ = query_all(&s);
    }
    let s = Session::new(&program, config_with_store(&dir));
    let _ = query_all(&s);
    let stats = s.interner_stats();
    assert_eq!(stats.max_ids, u32::MAX);
    assert!(stats.conds > 0, "spliced conditions occupy the arena");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn field_path_keys_warm_start_without_collisions() {
    // Field-sensitive locations put structured paths (`s.f`, `a[*]`) into
    // the variable names that content keys derive from. Sibling fields
    // with disjoint points-to sets must warm-start to *their own* cold
    // answers — a key collision between them would splice one field's
    // summary into the other and flip an answer.
    let src = r#"
        struct pair { int *fst; int *snd; };
        struct pair g; struct pair h;
        int a; int b; int c; int d;
        int *pa; int *pb;
        int buf[4]; int *pe;
        void main() {
            g.fst = &a; g.snd = &b;
            h.fst = &c; h.snd = &d;
            pa = g.fst; pb = g.snd;
            pe = buf;
            *pe = 0;
        }
    "#;
    let program = parse_program(src).unwrap();
    let dir = temp_dir("fieldkeys");

    let cold_session = Session::new(&program, config_with_store(&dir));
    let cold = query_all(&cold_session);
    assert!(cold_session.store_counters().misses > 0);
    drop(cold_session);

    let warm_session = Session::new(&program, config_with_store(&dir));
    let warm = query_all(&warm_session);
    let counters = warm_session.store_counters();
    assert!(counters.hits > 0, "warm run must hit: {counters:?}");
    assert_eq!(counters.invalidated, 0, "no key collisions: {counters:?}");
    assert_same_answers(&cold, &warm);

    // And the warm answers keep the sibling fields apart: pa sees only &a,
    // pb only &b (field sensitivity survives the store round-trip).
    let pa = program.var_named("pa").unwrap();
    let pb = program.var_named("pb").unwrap();
    let srcs = |answers: &[(VarId, LadderAnswer)], v: VarId| {
        answers
            .iter()
            .find(|(p, _)| *p == v)
            .map(|(_, a)| a.sources.clone())
            .unwrap()
    };
    assert_ne!(srcs(&warm, pa), srcs(&warm, pb));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn findings_stay_identical_when_program_actually_changes() {
    // Sanity check of content addressing itself: editing a relevant
    // statement moves the key, so the store silently cold-runs the new
    // version (and answers reflect the *new* program).
    let p1 = parse_program(&source()).unwrap();
    let src2 = source().replace("p3 = id(&a3);", "p3 = id(&a4);");
    assert_ne!(source(), src2);
    let p2 = parse_program(&src2).unwrap();
    let dir = temp_dir("edit");
    {
        let s = Session::new(&p1, config_with_store(&dir));
        let _ = query_all(&s);
    }
    let s = Session::new(&p2, config_with_store(&dir));
    let answers = query_all(&s);
    let p3 = p2.var_named("p3").unwrap();
    let a4 = p2.var_named("a4").unwrap();
    let (_, ans) = answers.iter().find(|(v, _)| *v == p3).unwrap();
    assert!(
        ans.sources
            .iter()
            .any(|(src, _)| matches!(src, bootstrap_core::Source::Addr(o) if *o == a4)),
        "answers must reflect the edited program"
    );
    let _ = fs::remove_dir_all(&dir);
}
