//! Property-based tests for the core framework: constraint normal form,
//! budgets, covers, and end-to-end consistency of the bootstrapped
//! analysis on random programs.

use bootstrap_core::constraint::{Atom, Cond};
use bootstrap_core::relevant::RelevantIndex;
use bootstrap_core::{
    AnalysisBudget, ClusterEngine, Config, EngineCx, EngineOptions, NoOracle, Session,
};
use bootstrap_ir::{CallGraph, FuncId, Loc, ProgramBuilder, VarId};
use proptest::prelude::*;

fn atom_strategy() -> impl Strategy<Value = Atom> {
    (0u32..4, 0u32..6, 0usize..6, 0usize..6).prop_map(|(kind, l, a, b)| {
        let loc = Loc::new(FuncId::new(0), l);
        let (va, vb) = (VarId::new(a), VarId::new(b));
        match kind {
            0 => Atom::PointsTo {
                loc,
                ptr: va,
                obj: vb,
            },
            1 => Atom::NotPointsTo {
                loc,
                ptr: va,
                obj: vb,
            },
            2 => Atom::Eq { loc, a: va, b: vb },
            _ => Atom::NotEq { loc, a: va, b: vb },
        }
    })
}

proptest! {
    /// Conjunction is idempotent, order-insensitive and sorted; a
    /// contradiction is detected regardless of insertion order.
    #[test]
    fn cond_conjunction_normal_form(atoms in prop::collection::vec(atom_strategy(), 0..10)) {
        let cap = 32;
        let mut fwd = Some(Cond::top());
        for &a in &atoms {
            fwd = fwd.and_then(|c| c.and(a, cap));
        }
        let mut rev = Some(Cond::top());
        for &a in atoms.iter().rev() {
            rev = rev.and_then(|c| c.and(a, cap));
        }
        prop_assert_eq!(fwd.is_none(), rev.is_none(), "contradiction detection is order-insensitive");
        if let (Some(f), Some(r)) = (fwd, rev) {
            prop_assert_eq!(f.atoms(), r.atoms());
            prop_assert!(f.atoms().windows(2).all(|w| w[0] < w[1]), "sorted, deduplicated");
            // Idempotence.
            let again = atoms.iter().try_fold(f.clone(), |c, &a| c.and(a, cap));
            prop_assert_eq!(again.map(|c| c.atoms().to_vec()), Some(f.atoms().to_vec()));
        }
    }

    /// Widening keeps the conjunction under the cap and never invents a
    /// contradiction.
    #[test]
    fn cond_widening_respects_cap(atoms in prop::collection::vec(atom_strategy(), 0..20), cap in 1usize..6) {
        let mut c = Cond::top();
        for &a in &atoms {
            match c.and(a, cap) {
                Some(next) => c = next,
                None => return Ok(()), // genuine contradiction, fine
            }
        }
        prop_assert!(c.atoms().len() <= cap);
        // A widened condition is still satisfiable under the unknown oracle.
        prop_assert!(c.satisfiable(|_, _| None));
    }

    /// Budgets: a budget of n allows exactly n ticks.
    #[test]
    fn budget_allows_exactly_n(n in 0u64..5000) {
        let mut b = AnalysisBudget::steps(n);
        let allowed = (0..n + 100).filter(|_| b.tick()).count() as u64;
        prop_assert_eq!(allowed, n);
        prop_assert!(b.exhausted() || n >= 100 + n);
    }
}

/// Random-program end-to-end properties.
fn build_program(ops: &[(u8, u8, u8)]) -> bootstrap_ir::Program {
    let n_ptrs = 6;
    let n_objs = 3;
    let mut b = ProgramBuilder::new();
    let ptrs: Vec<VarId> = (0..n_ptrs)
        .map(|i| b.global(&format!("p{i}"), true))
        .collect();
    let objs: Vec<VarId> = (0..n_objs)
        .map(|i| b.global(&format!("o{i}"), false))
        .collect();
    let helper = b.declare_func("helper", 1, true);
    let main = b.declare_func("main", 0, false);
    let mut fb = b.build_func(helper);
    let p0 = fb.param(0);
    fb.ret(Some(p0));
    fb.finish();
    let mut fb = b.build_func(main);
    for (i, &(kind, x, y)) in ops.iter().enumerate() {
        let p = ptrs[x as usize % n_ptrs];
        let q = ptrs[y as usize % n_ptrs];
        let o = objs[y as usize % n_objs];
        if i % 4 == 3 {
            fb.begin_if();
        }
        match kind % 6 {
            0 => {
                fb.addr_of(p, o);
            }
            1 => {
                fb.copy(p, q);
            }
            2 => {
                fb.load(p, q);
            }
            3 => {
                fb.store(p, q);
            }
            4 => {
                fb.null(p);
            }
            _ => {
                fb.call(helper, &[q], Some(p));
            }
        }
        if i % 4 == 3 {
            fb.else_arm();
            fb.skip();
            fb.end_if();
        }
    }
    fb.finish();
    b.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The session cover always covers every pointer, and cluster-based
    /// alias sets agree with direct pairwise queries.
    #[test]
    fn cover_and_alias_set_consistency(ops in prop::collection::vec((0u8..6, 0u8..6, 0u8..6), 1..30)) {
        let program = build_program(&ops);
        let session = Session::new(&program, Config::default());
        prop_assert!(session.cover().covers(session.pointers()));

        let az = session.analyzer();
        let exit = program.entry().unwrap().exit();
        // alias_set must contain exactly the co-clustered pointers that
        // pairwise may-alias.
        for &p in session.pointers().iter().take(3) {
            let set = az.alias_set(p, exit).unwrap();
            for &q in session.pointers() {
                if q == p { continue; }
                let expected = az.may_alias(p, q, exit).unwrap()
                    && session.cover().clusters_containing(p).any(|c| c.contains(q));
                prop_assert_eq!(
                    set.contains(&q),
                    expected,
                    "alias_set disagrees for {} / {}",
                    program.var(p).name(), program.var(q).name()
                );
            }
        }
    }

    /// may_alias is symmetric and reflexive; must_alias implies may_alias.
    #[test]
    fn alias_relation_properties(ops in prop::collection::vec((0u8..6, 0u8..6, 0u8..6), 1..30)) {
        let program = build_program(&ops);
        let session = Session::new(&program, Config::default());
        let az = session.analyzer();
        let exit = program.entry().unwrap().exit();
        let ptrs: Vec<VarId> = session.pointers().iter().copied().take(5).collect();
        for &p in &ptrs {
            prop_assert!(az.may_alias(p, p, exit).unwrap());
            for &q in &ptrs {
                let pq = az.may_alias(p, q, exit).unwrap();
                let qp = az.may_alias(q, p, exit).unwrap();
                prop_assert_eq!(pq, qp, "symmetry");
                if az.must_alias(p, q, exit).unwrap() {
                    prop_assert!(pq, "must implies may");
                }
            }
        }
    }

    /// Analysis results are deterministic across analyzer instances.
    #[test]
    fn analysis_is_deterministic(ops in prop::collection::vec((0u8..6, 0u8..6, 0u8..6), 1..25)) {
        let program = build_program(&ops);
        let session = Session::new(&program, Config::default());
        let exit = program.entry().unwrap().exit();
        let az1 = session.analyzer();
        let az2 = session.analyzer();
        for &p in session.pointers().iter().take(4) {
            let mut b1 = AnalysisBudget::unlimited();
            let mut b2 = AnalysisBudget::unlimited();
            let s1 = az1.sources(p, exit, &mut b1).unwrap();
            let s2 = az2.sources(p, exit, &mut b2).unwrap();
            prop_assert_eq!(s1, s2);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// The hash-consed walk is a pure representation change: over random
    /// programs, the interned engine and the pre-interning oracle walk
    /// (`EngineOptions::uninterned`, mirroring `SolverOptions::naive`)
    /// compute identical summary sets and identical local sources, in both
    /// path-insensitive and path-sensitive modes.
    #[test]
    fn interned_engine_matches_uninterned_oracle(
        ops in prop::collection::vec((0u8..6, 0u8..6, 0u8..6), 1..25),
        ps in 0u8..2,
    ) {
        let path_sensitive = ps == 1;
        let program = build_program(&ops);
        let steens = bootstrap_analyses::steensgaard::analyze(&program);
        let cg = CallGraph::build(&program);
        let index = RelevantIndex::build(&program, &steens);
        let cx = EngineCx { program: &program, steens: &steens, cg: &cg, index: &index };
        let members: Vec<VarId> = program
            .var_ids()
            .filter(|v| program.var(*v).is_pointer())
            .collect();
        let run = |uninterned: bool| {
            let mut engine = ClusterEngine::with_engine_options(
                cx,
                members.clone(),
                EngineOptions { cond_cap: 8, path_sensitive, uninterned, arena: None, fault: None },
            );
            engine
                .compute_all_summaries(cx, &NoOracle, &mut AnalysisBudget::unlimited())
                .unwrap();
            let exit = program.entry().unwrap().exit();
            let sources: Vec<_> = members
                .iter()
                .map(|&p| {
                    engine
                        .local_sources(cx, p, exit, &NoOracle, &mut AnalysisBudget::unlimited())
                        .unwrap()
                })
                .collect();
            (engine.summary_snapshot(), sources)
        };
        let (interned_summaries, interned_sources) = run(false);
        let (oracle_summaries, oracle_sources) = run(true);
        prop_assert_eq!(interned_summaries, oracle_summaries, "summary sets diverge");
        prop_assert_eq!(interned_sources, oracle_sources, "local sources diverge");
    }
}
