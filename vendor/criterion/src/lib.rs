//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of the criterion API this workspace's benches use
//! (`Criterion`, `benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `criterion_group!`, `criterion_main!`) with a simple
//! median-of-samples wall-clock measurement printed to stdout. No plots, no
//! statistics beyond min/median, no baseline storage — enough to compare
//! runs by eye and to keep `cargo bench` working offline.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level bench context.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Upstream-compatible no-op (CLI args are ignored).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Sets the default number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a single benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(id, self.sample_size, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            sample_size: 10,
        }
    }
}

/// A group of related benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples for benches in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Runs a parameterized benchmark in this group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        run_bench(&format!("{}/{}", self.name, id.0), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Finishes the group (printing is immediate; this is a no-op).
    pub fn finish(self) {}
}

/// A benchmark identifier (`name/parameter`).
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id from a function name and displayed parameter.
    pub fn new(name: impl Into<String>, param: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), param))
    }

    /// An id from just a displayed parameter.
    pub fn from_parameter(param: impl std::fmt::Display) -> Self {
        BenchmarkId(param.to_string())
    }
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the hot code.
pub struct Bencher {
    sample: Option<Duration>,
}

impl Bencher {
    /// Measures one sample of `f` (single invocation per sample — this
    /// stand-in targets macro-benchmarks, where one run dominates noise).
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        let t0 = Instant::now();
        black_box(f());
        self.sample = Some(t0.elapsed());
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(id: &str, samples: usize, mut f: F) {
    // One warmup.
    let mut b = Bencher { sample: None };
    f(&mut b);
    let mut times: Vec<Duration> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher { sample: None };
        f(&mut b);
        times.push(b.sample.unwrap_or_default());
    }
    times.sort();
    let median = times[times.len() / 2];
    let min = times[0];
    println!("bench {id:<50} median {median:>12?}  min {min:>12?}  ({samples} samples)");
}

/// Declares a bench-group function calling each target with a shared
/// [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grp");
        g.sample_size(2);
        g.bench_with_input(BenchmarkId::new("sq", 3), &3u32, |b, &x| b.iter(|| x * x));
        g.finish();
    }

    criterion_group!(benches, target);

    #[test]
    fn harness_runs() {
        benches();
    }
}
