//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides the two APIs this workspace uses:
//!
//! * `crossbeam::channel::unbounded` — a multi-producer multi-consumer FIFO
//!   channel. Implemented with a `Mutex<VecDeque>` + `Condvar`;
//!   disconnection is tracked by sender/receiver reference counts so `recv`
//!   returns `Err` once the queue drains and every sender is gone.
//! * `crossbeam::deque` — per-worker task deques with stealers, the shape
//!   of `crossbeam-deque`'s FIFO worker. The owner pushes to the tail and
//!   pops from the head; idle workers steal from the tail, so a deque
//!   seeded largest-first hands its owner the big tasks and thieves the
//!   small ones. Implemented with a `Mutex<VecDeque>` (no lock-free ring
//!   buffer offline), so `Steal::Retry` is never returned.

/// MPMC channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Chan<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty, disconnected channel")
        }
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T>(Arc<Chan<T>>);

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T>(Arc<Chan<T>>);

    /// Creates an unbounded MPMC FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (Sender(Arc::clone(&chan)), Receiver(chan))
    }

    impl<T> Sender<T> {
        /// Enqueues `value`; fails only when every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.0.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            let mut q = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
            q.push_back(value);
            drop(q);
            self.0.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.senders.fetch_add(1, Ordering::AcqRel);
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.0.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender: wake every blocked receiver so it can observe
                // the disconnect.
                self.0.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Dequeues the next value, blocking while the channel is empty but
        /// still connected.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.0.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                q = self.0.ready.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Dequeues without blocking; `None` when currently empty.
        pub fn try_recv(&self) -> Result<T, RecvError> {
            let mut q = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
            q.pop_front().ok_or(RecvError)
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.0.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    #[cfg(test)]
    mod channel_tests {
        use super::*;

        #[test]
        fn fifo_single_thread() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn workers_drain_and_stop() {
            let (tx, rx) = unbounded::<usize>();
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let total: usize = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..4)
                    .map(|_| {
                        let rx = rx.clone();
                        scope.spawn(move || {
                            let mut sum = 0;
                            while let Ok(v) = rx.recv() {
                                sum += v;
                            }
                            sum
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).sum()
            });
            assert_eq!(total, (0..100).sum());
        }
    }
}

/// Work-stealing deques (FIFO worker + tail stealers).
pub mod deque {
    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    /// The owner's handle to a task deque: push to the tail, pop from the
    /// head (FIFO). Seed it largest-task-first and the owner drains the
    /// expensive tasks while [`Stealer`]s peel the cheap tail.
    pub struct Worker<T> {
        inner: Arc<Mutex<VecDeque<T>>>,
    }

    /// A shared handle that takes tasks from the *tail* of a [`Worker`]'s
    /// deque, so thieves and the owner meet in the middle instead of
    /// contending on the same end.
    pub struct Stealer<T> {
        inner: Arc<Mutex<VecDeque<T>>>,
    }

    /// Outcome of a [`Stealer::steal`] attempt.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum Steal<T> {
        /// The deque was empty.
        Empty,
        /// A task was stolen.
        Success(T),
        /// The attempt lost a race and should be retried. The offline
        /// mutex-based implementation never returns this; callers still
        /// match on it for API compatibility with `crossbeam-deque`.
        Retry,
    }

    impl<T> Steal<T> {
        /// The stolen task, if the attempt succeeded.
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(v) => Some(v),
                Steal::Empty | Steal::Retry => None,
            }
        }
    }

    impl<T> Worker<T> {
        /// Creates an empty FIFO deque.
        pub fn new_fifo() -> Self {
            Worker {
                inner: Arc::new(Mutex::new(VecDeque::new())),
            }
        }

        /// Enqueues a task at the tail.
        pub fn push(&self, task: T) {
            self.inner
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push_back(task);
        }

        /// Dequeues the task at the head (the owner's end).
        pub fn pop(&self) -> Option<T> {
            self.inner
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .pop_front()
        }

        /// Number of queued tasks.
        pub fn len(&self) -> usize {
            self.inner.lock().unwrap_or_else(|e| e.into_inner()).len()
        }

        /// Whether the deque is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// A new stealer handle onto this deque's tail.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Stealer<T> {
        /// Takes the task at the tail, if any.
        pub fn steal(&self) -> Steal<T> {
            match self
                .inner
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .pop_back()
            {
                Some(v) => Steal::Success(v),
                None => Steal::Empty,
            }
        }
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    #[cfg(test)]
    mod deque_tests {
        use super::*;

        #[test]
        fn owner_pops_head_thief_steals_tail() {
            let w = Worker::new_fifo();
            for i in 0..4 {
                w.push(i);
            }
            let s = w.stealer();
            assert_eq!(w.pop(), Some(0), "owner takes the head");
            assert_eq!(s.steal(), Steal::Success(3), "thief takes the tail");
            assert_eq!(s.steal(), Steal::Success(2));
            assert_eq!(w.pop(), Some(1));
            assert_eq!(w.pop(), None);
            assert_eq!(s.steal(), Steal::Empty);
        }

        #[test]
        fn concurrent_drain_loses_nothing() {
            let w = Worker::new_fifo();
            for i in 0..1000usize {
                w.push(i);
            }
            let total: usize = std::thread::scope(|scope| {
                let thieves: Vec<_> = (0..3)
                    .map(|_| {
                        let s = w.stealer();
                        scope.spawn(move || {
                            let mut sum = 0;
                            while let Some(v) = s.steal().success() {
                                sum += v;
                            }
                            sum
                        })
                    })
                    .collect();
                let mut sum = 0;
                while let Some(v) = w.pop() {
                    sum += v;
                }
                sum + thieves
                    .into_iter()
                    .map(|h| h.join().unwrap())
                    .sum::<usize>()
            });
            assert_eq!(total, (0..1000).sum());
        }
    }
}
