//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides the one API this workspace uses: `crossbeam::channel::unbounded`,
//! a multi-producer multi-consumer FIFO channel. Implemented with a
//! `Mutex<VecDeque>` + `Condvar`; disconnection is tracked by sender/receiver
//! reference counts so `recv` returns `Err` once the queue drains and every
//! sender is gone (the same contract the work-stealing cluster driver relies
//! on to shut workers down).

/// MPMC channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Chan<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty, disconnected channel")
        }
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T>(Arc<Chan<T>>);

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T>(Arc<Chan<T>>);

    /// Creates an unbounded MPMC FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (Sender(Arc::clone(&chan)), Receiver(chan))
    }

    impl<T> Sender<T> {
        /// Enqueues `value`; fails only when every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.0.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            let mut q = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
            q.push_back(value);
            drop(q);
            self.0.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.senders.fetch_add(1, Ordering::AcqRel);
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.0.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender: wake every blocked receiver so it can observe
                // the disconnect.
                self.0.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Dequeues the next value, blocking while the channel is empty but
        /// still connected.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.0.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                q = self.0.ready.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Dequeues without blocking; `None` when currently empty.
        pub fn try_recv(&self) -> Result<T, RecvError> {
            let mut q = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
            q.pop_front().ok_or(RecvError)
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.0.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_single_thread() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn workers_drain_and_stop() {
            let (tx, rx) = unbounded::<usize>();
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let total: usize = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..4)
                    .map(|_| {
                        let rx = rx.clone();
                        scope.spawn(move || {
                            let mut sum = 0;
                            while let Ok(v) = rx.recv() {
                                sum += v;
                            }
                            sum
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).sum()
            });
            assert_eq!(total, (0..100).sum());
        }
    }
}
