//! Value-generation strategies: integer ranges, tuples, `prop_map`, and
//! simple regex-like string patterns.

use crate::TestRng;

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated value type.
    type Value: std::fmt::Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Post-processes generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        U: std::fmt::Debug,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Boxes the strategy (upstream-compatible helper).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A boxed, dynamically-dispatched strategy.
pub struct BoxedStrategy<V>(Box<dyn DynStrategy<V>>);

trait DynStrategy<V> {
    fn dyn_generate(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

impl<V: std::fmt::Debug> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.dyn_generate(rng)
    }
}

/// [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    U: std::fmt::Debug,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                rng.in_span(self.start as i128, span) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                rng.in_span(lo as i128, span) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Pattern strategies: a `&str` is treated as a (tiny) regex subset —
/// one atom (`\PC` for "any printable char" or a `[...]` character class)
/// followed by a `{min,max}` repetition. This covers the patterns the
/// workspace's tests use; anything unrecognized falls back to generating
/// the literal string itself.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        match parse_pattern(self) {
            Some((pool, min, max)) => {
                let span = (max - min + 1) as u64;
                let len = min + rng.below(span) as usize;
                (0..len)
                    .map(|_| pool[rng.below(pool.len() as u64) as usize])
                    .collect()
            }
            None => (*self).to_string(),
        }
    }
}

/// Parses `\PC{a,b}` / `[chars]{a,b}` into (char pool, min, max).
fn parse_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
    let (pool, rest) = if let Some(rest) = pat.strip_prefix("\\PC") {
        // Any printable character: ASCII printables plus a few multibyte
        // code points to keep lexers honest.
        let mut pool: Vec<char> = (0x20u8..0x7F).map(|b| b as char).collect();
        pool.extend(['é', 'λ', '→', '字', '\u{00A0}']);
        (pool, rest)
    } else if let Some(body) = pat.strip_prefix('[') {
        let close = body.find(']')?;
        let class = &body[..close];
        let mut pool = Vec::new();
        let mut chars = class.chars().peekable();
        while let Some(c) = chars.next() {
            if c == '\\' {
                match chars.next()? {
                    'n' => pool.push('\n'),
                    't' => pool.push('\t'),
                    'r' => pool.push('\r'),
                    other => pool.push(other),
                }
            } else if chars.peek() == Some(&'-') {
                // Character range a-z.
                chars.next();
                let hi = chars.next()?;
                for v in (c as u32)..=(hi as u32) {
                    pool.push(char::from_u32(v)?);
                }
            } else {
                pool.push(c);
            }
        }
        if pool.is_empty() {
            return None;
        }
        (pool, &body[close + 1..])
    } else {
        return None;
    };
    let rest = rest.strip_prefix('{')?;
    let close = rest.find('}')?;
    if close + 1 != rest.len() {
        return None;
    }
    let (min_s, max_s) = rest[..close].split_once(',')?;
    Some((pool, min_s.parse().ok()?, max_s.parse().ok()?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_pc_pattern() {
        let (pool, min, max) = parse_pattern("\\PC{0,200}").unwrap();
        assert!(pool.contains(&'a') && pool.contains(&' '));
        assert_eq!((min, max), (0, 200));
    }

    #[test]
    fn parse_class_pattern() {
        let (pool, min, max) = parse_pattern("[a-z0-9*&;(){}=,<>! \\n]{0,300}").unwrap();
        assert!(pool.contains(&'z') && pool.contains(&'7') && pool.contains(&'\n'));
        assert!(pool.contains(&'{') && pool.contains(&'}'));
        assert_eq!((min, max), (0, 300));
    }

    #[test]
    fn unknown_pattern_is_literal() {
        assert!(parse_pattern("hello").is_none());
        let mut rng = TestRng::for_case("t", 0);
        assert_eq!("hello".generate(&mut rng), "hello");
    }
}
