//! Sampling strategies: uniform selection from a fixed pool.

use crate::strategy::Strategy;
use crate::TestRng;

/// A strategy drawing uniformly from `options` (which must be non-empty).
pub fn select<T: Clone + std::fmt::Debug>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select over an empty pool");
    Select { options }
}

/// See [`select`].
pub struct Select<T> {
    options: Vec<T>,
}

impl<T: Clone + std::fmt::Debug> Strategy for Select<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.options[rng.below(self.options.len() as u64) as usize].clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn select_only_yields_pool_members() {
        let s = select(vec![1, 5, 9]);
        let mut rng = TestRng::for_case("s", 0);
        for _ in 0..60 {
            assert!([1, 5, 9].contains(&s.generate(&mut rng)));
        }
    }
}
