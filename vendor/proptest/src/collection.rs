//! Collection strategies: `vec` and `btree_set`.

use std::collections::BTreeSet;
use std::ops::Range;

use crate::strategy::Strategy;
use crate::TestRng;

/// A strategy producing `Vec`s of values from `element`, with a length
/// drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = sample_size(&self.size, rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// A strategy producing `BTreeSet`s of values from `element`; the target
/// cardinality is drawn from `size` (the result may be smaller when the
/// element domain is too narrow to fill it).
pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy { element, size }
}

/// See [`btree_set`].
pub struct BTreeSetStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let target = sample_size(&self.size, rng);
        let mut out = BTreeSet::new();
        // Bounded number of attempts so narrow domains terminate.
        for _ in 0..target.saturating_mul(3) {
            if out.len() >= target {
                break;
            }
            out.insert(self.element.generate(rng));
        }
        out
    }
}

fn sample_size(size: &Range<usize>, rng: &mut TestRng) -> usize {
    assert!(size.start < size.end, "empty size range");
    size.start + rng.below((size.end - size.start) as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_lengths_in_range() {
        let s = vec(0u32..50, 2..9);
        let mut rng = TestRng::for_case("c", 0);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..9).contains(&v.len()));
            assert!(v.iter().all(|&k| k < 50));
        }
    }

    #[test]
    fn set_respects_bound() {
        let s = btree_set(0u32..4, 0..10);
        let mut rng = TestRng::for_case("c", 1);
        for _ in 0..50 {
            let v = s.generate(&mut rng);
            assert!(v.len() < 10);
        }
    }
}
