//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no registry access, so this workspace vendors a
//! minimal property-testing harness with the same surface the test suites
//! use: the `proptest!` macro (with optional `#![proptest_config(..)]`),
//! `prop_assert!`/`prop_assert_eq!`, integer-range / tuple / `prop_map`
//! strategies, `prop::collection::{vec, btree_set}`, `prop::sample::select`,
//! and simple regex-like string strategies (`"\\PC{0,200}"`,
//! `"[chars]{0,300}"`).
//!
//! Differences from upstream: no shrinking (failures report the raw inputs
//! and case seed), and the random stream is SplitMix64 keyed on
//! test-name + case index, so failures reproduce deterministically across
//! runs of the same binary.

use std::fmt;

pub mod collection;
pub mod sample;
pub mod strategy;

pub use strategy::Strategy;

/// Deterministic per-case random source.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// An RNG keyed on the test path and case number (plus an env override
    /// `PROPTEST_SEED` to explore alternative streams).
    pub fn for_case(test_path: &str, case: u32) -> Self {
        let base: u64 = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0x5EED_1234_ABCD_0001);
        let mut h = base ^ ((case as u64) << 32) ^ case as u64;
        for b in test_path.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100000001B3);
        }
        let mut rng = TestRng { state: h };
        let _ = rng.next_u64();
        rng
    }

    /// The next 64 random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// A uniform draw from `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// A uniform draw from a half-open `u128` span starting at `lo`.
    pub fn in_span(&mut self, lo: i128, span: u128) -> i128 {
        lo + (self.next_u64() as u128 % span) as i128
    }
}

/// A failed property assertion (carried out of the test-case closure).
#[derive(Clone, Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }

    /// Upstream-compatible alias of [`TestCaseError::fail`].
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// Harness configuration (`#![proptest_config(..)]`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(128);
        ProptestConfig { cases }
    }
}

/// The common imports: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{ProptestConfig, TestCaseError};

    /// Namespaced strategy modules (`prop::collection::vec`, ...).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
        pub use crate::strategy;
    }
}

/// Asserts a condition inside a `proptest!` body, failing the case (with
/// its inputs reported) instead of panicking outright.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                left,
                right
            )));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{}` != `{}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left
            )));
        }
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running the body over `config.cases` random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                #[allow(unused_imports)]
                use $crate::strategy::Strategy as _;
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut __rng = $crate::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(let $arg = ($strat).generate(&mut __rng);)+
                    let __inputs = {
                        let mut s = ::std::string::String::new();
                        $(
                            s.push_str(concat!(stringify!($arg), " = "));
                            s.push_str(&format!("{:?}; ", &$arg));
                        )+
                        s
                    };
                    let __result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = __result {
                        panic!(
                            "proptest `{}` failed at case {}/{}: {}\n  inputs: {}",
                            stringify!($name),
                            case,
                            config.cases,
                            e,
                            __inputs
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        /// The harness runs, strategies stay in range, early Ok(()) works.
        #[test]
        fn harness_smoke(x in 0u32..10, y in 1usize..4, pair in (0u8..3, 0u32..5)) {
            prop_assert!(x < 10);
            prop_assert!((1..4).contains(&y));
            if pair.0 == 0 {
                return Ok(());
            }
            prop_assert!(pair.1 < 5, "pair out of range: {:?}", pair);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(17))]

        /// Config form parses and applies.
        #[test]
        fn configured_cases(v in prop::collection::vec(0u32..100, 0..10)) {
            prop_assert!(v.len() < 10);
            prop_assert!(v.iter().all(|&k| k < 100));
        }
    }

    proptest! {
        /// String pattern strategies produce strings within length bounds.
        #[test]
        fn string_patterns(a in "\\PC{0,20}", b in "[a-z0-9 ]{0,30}") {
            prop_assert!(a.chars().count() <= 20);
            prop_assert!(b.chars().count() <= 30);
            prop_assert!(b.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == ' '));
        }
    }

    proptest! {
        /// prop_map and select compose.
        #[test]
        fn map_and_select(
            s in crate::sample::select(vec!["a".to_string(), "bb".to_string()]),
            n in (0u32..5).prop_map(|v| v * 2),
        ) {
            prop_assert!(s == "a" || s == "bb");
            prop_assert!(n % 2 == 0 && n < 10);
        }
    }

    proptest! {
        /// btree_set sizes respect the bound.
        #[test]
        fn btree_sets(set in prop::collection::btree_set(0u32..600, 0..200)) {
            prop_assert!(set.len() < 200);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy as _;
        let mut a = crate::TestRng::for_case("x::y", 3);
        let mut b = crate::TestRng::for_case("x::y", 3);
        let sa = (0u32..1000).generate(&mut a);
        let sb = (0u32..1000).generate(&mut b);
        assert_eq!(sa, sb);
    }
}
