//! Offline stand-in for the `rand` crate.
//!
//! The build container has no registry access, so this workspace vendors a
//! minimal, dependency-free implementation of the small `rand` API surface
//! it actually uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`] and
//! [`Rng::gen_range`] over integer ranges. The generator is SplitMix64 —
//! deterministic for a given seed, statistically fine for synthetic
//! workload generation (it is not, and does not need to be, the upstream
//! ChaCha12 stream).

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of an RNG from seed material.
pub trait SeedableRng: Sized {
    /// Creates an RNG seeded from a `u64`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let draw = (rng.next_u64() as u128) % span;
                (self.start as u128 + draw) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128).wrapping_sub(start as u128) + 1;
                let draw = (rng.next_u64() as u128) % span;
                (start as u128 + draw) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform draw from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// A bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Concrete RNG types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator (stand-in for the upstream
    /// `StdRng`; same API, different — but equally deterministic — stream).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut rng = StdRng { state: seed };
            // Warm up so nearby seeds diverge immediately.
            let _ = rng.next_u64();
            rng
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000u32), b.gen_range(0..1000u32));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(1..=6u8);
            assert!((1..=6).contains(&y));
        }
    }

    #[test]
    fn seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u32> = (0..8).map(|_| a.gen_range(0..u32::MAX)).collect();
        let vb: Vec<u32> = (0..8).map(|_| b.gen_range(0..u32::MAX)).collect();
        assert_ne!(va, vb);
    }
}
