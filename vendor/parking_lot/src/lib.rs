//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s non-poisoning API
//! (`lock()`/`read()`/`write()` return guards directly). Poisoned locks are
//! recovered — a panicking analysis thread must not wedge every other
//! worker sharing the cache.

use std::sync::{
    Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// A mutual-exclusion lock with `parking_lot`'s panic-free API.
#[derive(Debug, Default)]
pub struct Mutex<T>(StdMutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock with `parking_lot`'s panic-free API.
#[derive(Debug, Default)]
pub struct RwLock<T>(StdRwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub fn new(value: T) -> Self {
        RwLock(StdRwLock::new(value))
    }

    /// Acquires a shared read guard, recovering from poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard, recovering from poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(r1.len() + r2.len(), 4);
        }
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
