//! Umbrella crate for the bootstrapped pointer alias analysis workspace.
//!
//! Re-exports the public APIs of the member crates so examples and
//! integration tests can use a single dependency. See the `bootstrap-core`
//! crate for the analysis entry points and the repository README for an
//! overview.

pub use bootstrap_analyses as analyses;
pub use bootstrap_core as core;
pub use bootstrap_ir as ir;
pub use bootstrap_workloads as workloads;
