//! Golden-file and corpus tests for the client checker suite.
//!
//! Three properties are pinned down:
//!
//! 1. On the buggy corpus ([`bootstrap_workloads::buggy`]) the checkers
//!    find **exactly** the labeled defects — misses are false negatives,
//!    extras are false positives.
//! 2. On the clean synthetic presets the checkers report nothing.
//! 3. On the mini-C fixtures under `tests/fixtures/` the rendered text
//!    output matches the checked-in golden files byte for byte
//!    (set `BLESS=1` to regenerate).

use std::collections::BTreeSet;
use std::path::Path;

use bootstrap_checks::{run_checks, CheckerKind};
use bootstrap_core::{Config, Session};
use bootstrap_workloads::buggy::{self, BuggyConfig};

/// The buggy corpus: the checkers must report exactly the labeled
/// defects, as (checker, variable, severity) triples.
#[test]
fn buggy_corpus_findings_match_labels_exactly() {
    let generated = buggy::generate(&BuggyConfig::default());
    let session = Session::new(&generated.program, Config::default());
    let report = run_checks(&session, &CheckerKind::ALL);
    assert_eq!(
        report.degrade.degraded_queries(),
        0,
        "queries must not degrade"
    );

    let found: BTreeSet<(String, String, String)> = report
        .findings
        .iter()
        .map(|f| {
            (
                f.checker.name().to_string(),
                f.var.clone(),
                f.severity.label().to_string(),
            )
        })
        .collect();
    let labeled: BTreeSet<(String, String, String)> = generated
        .expected
        .iter()
        .map(|e| (e.checker.clone(), e.var.clone(), e.severity.clone()))
        .collect();

    let missed: Vec<_> = labeled.difference(&found).collect();
    let extra: Vec<_> = found.difference(&labeled).collect();
    assert!(
        missed.is_empty() && extra.is_empty(),
        "false negatives: {missed:?}\nfalse positives: {extra:?}"
    );
}

/// The struct-field function-pointer preset: the labeled null-deref is
/// visible only through the devirtualized `sfp_ops.reset → sfp_clear`
/// edge. Losing the edge (the old lowering collapsed `s.fp()` into a
/// fresh temp with no targets) turns it into a false negative.
#[test]
fn struct_fp_preset_fires_through_the_field_call() {
    use bootstrap_alias::analyses::fpresolve::{self, FpResolver};
    use bootstrap_alias::ir::{CallTarget, Stmt};

    let mut preset = buggy::struct_fp_preset();
    let clear = preset.program.func_named("sfp_clear").unwrap();

    // Devirtualize at the most precise stage and keep the true edge.
    let r = fpresolve::resolve_calls(&mut preset.program, FpResolver::PointsTo);
    assert_eq!(r.sites, 1);
    assert!(r.edges >= 1, "the reset() site must keep at least one edge");
    let main = preset
        .program
        .func(preset.program.func_named("main").unwrap());
    let has_edge = main
        .body()
        .iter()
        .any(|s| matches!(s, Stmt::Call(c) if c.target == CallTarget::Direct(clear)));
    assert!(has_edge, "devirtualized call edge to sfp_clear must exist");

    let session = Session::new(&preset.program, Config::default());
    let report = run_checks(&session, &CheckerKind::ALL);
    let found: BTreeSet<(String, String, String)> = report
        .findings
        .iter()
        .map(|f| {
            (
                f.checker.name().to_string(),
                f.var.clone(),
                f.severity.label().to_string(),
            )
        })
        .collect();
    let labeled: BTreeSet<(String, String, String)> = preset
        .expected
        .iter()
        .map(|e| (e.checker.clone(), e.var.clone(), e.severity.clone()))
        .collect();
    assert_eq!(
        found, labeled,
        "exactly the labeled defect, through the fp call"
    );
}

/// A defect-free buggy-generator configuration (decoys and benign
/// communities only) must yield zero findings.
#[test]
fn decoy_only_corpus_is_clean() {
    let config = BuggyConfig {
        null_derefs: 0,
        branch_null_derefs: 0,
        uafs: 0,
        interproc_uafs: 0,
        double_frees: 0,
        interproc_double_frees: 0,
        races: 0,
        decoys: 6,
        benign: 6,
        locked_decoys: 2,
        aliased_lock_decoys: 2,
    };
    let generated = buggy::generate(&config);
    let session = Session::new(&generated.program, Config::default());
    let report = run_checks(&session, &CheckerKind::ALL);
    assert!(
        report.findings.is_empty(),
        "false positives on decoys: {:?}",
        report.findings
    );
}

/// The clean synthetic presets (no injected defects) must stay clean:
/// every finding would be a false positive.
#[test]
fn clean_preset_has_zero_false_positives() {
    let preset = bootstrap_workloads::presets::by_name("sock").expect("preset");
    let program = preset.generate();
    let session = Session::new(&program, Config::default());
    let report = run_checks(&session, &CheckerKind::ALL);
    assert!(
        report.findings.is_empty(),
        "false positives on clean preset: {:?}",
        report.findings
    );
}

fn golden_check(fixture: &str) {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let src_path = dir.join(fixture);
    let source = std::fs::read_to_string(&src_path).expect("fixture");
    let program = bootstrap_ir::parse_program(&source).expect("fixture parses");
    let session = Session::new(&program, Config::default());
    let report = run_checks(&session, &CheckerKind::ALL);
    let rendered = bootstrap_checks::render_text(&report, Some(fixture));

    let golden_path = dir.join(format!("{}.golden.txt", fixture.trim_end_matches(".c")));
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(&golden_path, &rendered).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(&golden_path)
        .unwrap_or_else(|_| panic!("missing golden file {golden_path:?}; run with BLESS=1"));
    assert_eq!(
        rendered, golden,
        "checker output for {fixture} diverges from golden file"
    );
}

#[test]
fn bugs_fixture_matches_golden() {
    golden_check("bugs.c");
}

#[test]
fn clean_fixture_matches_golden() {
    golden_check("clean.c");
}
