//! Field-sensitivity regression tests across the precision ladder.
//!
//! Two properties of per-field abstract locations are pinned down:
//!
//! 1. **Containment** — Andersen's points-to sets stay inside
//!    Steensgaard's pointee classes even when fields are address-taken
//!    (`&s.f` pins the field location; the coarser analysis must still
//!    cover everything the finer one derives).
//! 2. **Separation** — sibling fields of one struct keep *disjoint*
//!    FSCS points-to sets when the program never conflates them; field
//!    sensitivity must not leak one field's targets into its sibling.

use std::collections::BTreeSet;

use bootstrap_alias::analyses::{andersen, steensgaard};
use bootstrap_alias::core::{AnalysisBudget, Config, Session, Source};
use bootstrap_alias::ir::{parse_program, Program};
use bootstrap_workloads::minic::{self, MiniCConfig};

const SIBLINGS: &str = "
    struct pair { int *fst; int *snd; };
    int a; int b; int c;
    struct pair s;
    int **pp;
    int *q;
    void main() {
        s.fst = &a;
        s.snd = &b;
        pp = &s.fst;
        *pp = &c;
        q = s.snd;
    }
";

/// Andersen ⊆ Steensgaard, checked pointwise: every object Andersen
/// derives for `v` must sit in the Steensgaard pointee class of `v`.
fn assert_andersen_in_steensgaard(program: &Program, label: &str) {
    let an = andersen::analyze(program);
    let st = steensgaard::analyze(program);
    let session = Session::new(program, Config::default());
    for &v in session.pointers() {
        let pointee = st.pointee(st.class_of(v));
        for o in an.points_to_vars(v) {
            assert_eq!(
                pointee,
                Some(st.class_of(o)),
                "{label}: Andersen has {} -> {} but Steensgaard's pointee \
                 class for it is {pointee:?}",
                program.var(v).name(),
                program.var(o).name()
            );
        }
    }
}

#[test]
fn andersen_is_contained_in_steensgaard_with_address_taken_fields() {
    let program = parse_program(SIBLINGS).unwrap();
    assert_andersen_in_steensgaard(&program, "siblings");

    // And the finer analysis is strictly finer here: Andersen keeps the
    // sibling fields apart while Steensgaard may merge them.
    let an = andersen::analyze(&program);
    let fst = program.var_named("s.fst").unwrap();
    let snd = program.var_named("s.snd").unwrap();
    let fst_pts: BTreeSet<_> = an.points_to_vars(fst).into_iter().collect();
    let snd_pts: BTreeSet<_> = an.points_to_vars(snd).into_iter().collect();
    assert!(!fst_pts.is_empty() && !snd_pts.is_empty());
    assert!(
        fst_pts.is_disjoint(&snd_pts),
        "Andersen conflated the sibling fields: {fst_pts:?} vs {snd_pts:?}"
    );
}

#[test]
fn sibling_fields_have_disjoint_fscs_points_to() {
    let program = parse_program(SIBLINGS).unwrap();
    let session = Session::new(&program, Config::default());
    let az = session.analyzer();
    let exit = program.entry().unwrap().exit();
    let mut budget = AnalysisBudget::unlimited();

    let fst = program.var_named("s.fst").unwrap();
    let snd = program.var_named("s.snd").unwrap();
    let srcs = |v, budget: &mut AnalysisBudget| -> BTreeSet<String> {
        az.sources(v, exit, budget)
            .unwrap()
            .iter()
            .map(|(s, _)| s.display(&program))
            .collect()
    };
    let fst_srcs = srcs(fst, &mut budget);
    let snd_srcs = srcs(snd, &mut budget);

    // The store through the pinned `&s.fst` location landed on fst…
    let c = program.var_named("c").unwrap();
    let a = program.var_named("a").unwrap();
    let holds = |set: &BTreeSet<String>, o| {
        let disp = Source::Addr(o).display(&program);
        set.contains(&disp)
    };
    assert!(
        holds(&fst_srcs, c) || holds(&fst_srcs, a),
        "fst lost its targets: {fst_srcs:?}"
    );
    assert!(!snd_srcs.is_empty(), "snd lost its target");
    // …and never leaked into the sibling.
    assert!(
        fst_srcs.is_disjoint(&snd_srcs),
        "sibling fields conflated at FSCS: {fst_srcs:?} vs {snd_srcs:?}"
    );
}

/// Containment holds across a generated sweep with the struct, array,
/// and function-pointer surfaces enabled (after devirtualization, so
/// indirect calls contribute their parameter bindings on both sides).
#[test]
fn andersen_is_contained_in_steensgaard_on_generated_struct_programs() {
    for seed in 0..15 {
        let cfg = MiniCConfig {
            seed,
            structs: true,
            arrays: true,
            fn_ptrs: true,
            ..MiniCConfig::default()
        };
        let src = minic::generate(&cfg).render();
        let mut program = parse_program(&src).unwrap();
        steensgaard::resolve_and_devirtualize(&mut program);
        assert_andersen_in_steensgaard(&program, &format!("seed {seed}"));
    }
}
