/* Fixture for the checker golden test: each defect is annotated with the
 * expected diagnostic; the decoy patterns at the bottom must stay clean. */
int *p;
int *q;
int *h;
int *r;
int a;
int x;
int c;

void release() {
    free(h);
}

void main() {
    /* Unconditional null dereference. */
    p = NULL;
    x = *p;

    /* Branch-dependent null dereference (warning). */
    if (c) { q = &a; } else { q = NULL; }
    x = *q;

    /* Use-after-free through an alias, freed in a callee. */
    h = malloc(sizeof(int));
    r = h;
    release();
    x = *r;

    /* Double free through the same alias. */
    free(r);

    /* Decoy: the NULL is killed before the dereference. */
    p = NULL;
    p = &a;
    x = *p;

    /* Decoy: freed, then repointed before use. */
    h = malloc(sizeof(int));
    free(h);
    h = &a;
    x = *h;
}
