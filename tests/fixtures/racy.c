int counter; int shadow;
int m;
int *p; int *q; int *lk;

void worker() {
    int t;
    lock(&m);
    t = *q; *q = t;
    unlock(&m);
    t = *p;
    *p = t;
}

void main() {
    int s;
    p = &counter;
    q = &shadow;
    lk = &m;
    spawn worker();
    lock(lk);
    s = *q; *q = s;
    unlock(lk);
    *p = 0;
}
