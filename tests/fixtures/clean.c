/* Fixture for the checker golden test: contains pointer activity that a
 * flow-insensitive checker would flag, but is clean under flow- and
 * context-sensitive analysis. Expected output: no findings. */
int *p;
int *q;
int *h;
int a;
int b;
int x;
int c;

int *pick() {
    if (c) { return &a; }
    return &b;
}

void main() {
    /* Killed NULL. */
    p = NULL;
    p = &a;
    x = *p;

    /* Free then realloc before use. */
    h = malloc(sizeof(int));
    free(h);
    h = malloc(sizeof(int));
    x = *h;

    /* Interprocedural but clean. */
    q = pick();
    x = *q;
}
