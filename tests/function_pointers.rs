//! End-to-end function-pointer handling: Emami-style resolution via
//! Steensgaard, devirtualization, and alias queries through indirect
//! calls.

use bootstrap_alias::analyses::steensgaard;
use bootstrap_alias::core::{Config, Session};
use bootstrap_alias::ir::parse_program;

#[test]
fn devirtualized_indirect_call_flows_values() {
    let mut p = parse_program(
        "int a; int *g;
         void seta() { g = &a; }
         void (*fp)();
         void main() { fp = &seta; fp(); }",
    )
    .unwrap();
    assert!(p.has_indirect_calls());
    let n = steensgaard::resolve_and_devirtualize(&mut p);
    assert_eq!(n, 1);
    assert!(!p.has_indirect_calls());

    let session = Session::new(&p, Config::default());
    let az = session.analyzer();
    let exit = p.entry().unwrap().exit();
    let g = p.var_named("g").unwrap();
    let mut budget = session.config().query_budget();
    let sources = az.sources(g, exit, &mut budget).unwrap();
    let names: Vec<String> = sources.iter().map(|(s, _)| s.display(&p)).collect();
    assert!(names.contains(&"&a".to_string()), "{names:?}");
}

#[test]
fn two_target_function_pointer_merges_effects() {
    let mut p = parse_program(
        "int a; int b; int sel; int *g;
         void seta() { g = &a; }
         void setb() { g = &b; }
         void (*fp)();
         void main() {
             if (sel) { fp = &seta; } else { fp = &setb; }
             fp();
         }",
    )
    .unwrap();
    steensgaard::resolve_and_devirtualize(&mut p);
    assert!(!p.has_indirect_calls());

    let session = Session::new(&p, Config::default());
    let az = session.analyzer();
    let exit = p.entry().unwrap().exit();
    let g = p.var_named("g").unwrap();
    let mut budget = session.config().query_budget();
    let sources = az.sources(g, exit, &mut budget).unwrap();
    let names: Vec<String> = sources.iter().map(|(s, _)| s.display(&p)).collect();
    assert!(names.contains(&"&a".to_string()), "{names:?}");
    assert!(names.contains(&"&b".to_string()), "{names:?}");
}

#[test]
fn indirect_call_with_args_and_return() {
    let mut p = parse_program(
        "int a; int *out;
         int *id(int *q) { return q; }
         void main() {
             int *(*fp)();
             fp = &id;
             out = fp(&a);
         }",
    )
    .unwrap();
    steensgaard::resolve_and_devirtualize(&mut p);
    assert!(!p.has_indirect_calls());
    let session = Session::new(&p, Config::default());
    let az = session.analyzer();
    let exit = p.entry().unwrap().exit();
    let out = p.var_named("out").unwrap();
    let a = p.var_named("a").unwrap();
    let mut budget = session.config().query_budget();
    let sources = az.sources(out, exit, &mut budget).unwrap();
    assert!(
        sources
            .iter()
            .any(|(s, _)| *s == bootstrap_alias::core::Source::Addr(a)),
        "{sources:?}"
    );
}

#[test]
fn unresolvable_function_pointer_degrades_gracefully() {
    // fp never receives a function: the call devirtualizes to nothing
    // (a skip) and analysis still works.
    let mut p = parse_program(
        "int a; int *g; void (*fp)();
         void main() { fp(); g = &a; }",
    )
    .unwrap();
    let n = steensgaard::resolve_and_devirtualize(&mut p);
    assert_eq!(n, 1);
    let session = Session::new(&p, Config::default());
    let az = session.analyzer();
    let exit = p.entry().unwrap().exit();
    let g = p.var_named("g").unwrap();
    let a = p.var_named("a").unwrap();
    assert!(az.may_alias(g, g, exit).unwrap());
    let mut budget = session.config().query_budget();
    let sources = az.sources(g, exit, &mut budget).unwrap();
    assert!(sources
        .iter()
        .any(|(s, _)| *s == bootstrap_alias::core::Source::Addr(a)));
}

#[test]
fn function_pointer_passed_through_call() {
    // The function pointer itself flows through a helper before the call:
    // the second devirtualization round resolves it.
    let mut p = parse_program(
        "int a; int *g;
         void seta() { g = &a; }
         void (*fp)(); void (*fq)();
         void main() {
             fp = &seta;
             fq = fp;
             fq();
         }",
    )
    .unwrap();
    steensgaard::resolve_and_devirtualize(&mut p);
    assert!(!p.has_indirect_calls());
    let session = Session::new(&p, Config::default());
    let az = session.analyzer();
    let exit = p.entry().unwrap().exit();
    let g = p.var_named("g").unwrap();
    let a = p.var_named("a").unwrap();
    let mut budget = session.config().query_budget();
    let sources = az.sources(g, exit, &mut budget).unwrap();
    assert!(sources
        .iter()
        .any(|(s, _)| *s == bootstrap_alias::core::Source::Addr(a)));
}
