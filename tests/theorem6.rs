//! Direct checks of Theorem 6/7: restricting the flow- and
//! context-sensitive analysis to a cluster's relevant statements `St_P`
//! loses no aliases — the per-cluster engine must produce the same sources
//! for cluster members as an engine run over the *whole* pointer
//! population (whose `St_P` is the entire program).

use bootstrap_alias::core::{AnalysisBudget, ClusterEngine, Config, EngineCx, NoOracle, Session};
use bootstrap_alias::ir::{parse_program, Program, VarId};
use bootstrap_alias::workloads::{generator, BigPartition, GenConfig};

fn cx<'a>(session: &'a Session<'a>) -> EngineCx<'a> {
    EngineCx {
        program: session.program(),
        steens: session.steens(),
        cg: session.callgraph(),
        index: session.relevant_index(),
    }
}

/// For every cluster of the cover and every member, local sources computed
/// against the cluster slice equal those computed against the whole
/// program.
fn check_theorem6(program: &Program, label: &str) {
    let session = Session::new(program, Config::default());
    let exit = program.entry().unwrap().exit();
    let all_pointers: Vec<VarId> = session.pointers().to_vec();
    let mut whole = ClusterEngine::new(cx(&session), all_pointers, 8);

    for cluster in session.cover().clusters() {
        let mut sliced = ClusterEngine::new(cx(&session), cluster.members.clone(), 8);
        // The slice must be a subset of the whole program's statements.
        assert!(
            sliced.relevant().stmt_count() <= whole.relevant().stmt_count(),
            "{label}: slice bigger than program"
        );
        for &m in &cluster.members {
            let a = sliced
                .local_sources(
                    cx(&session),
                    m,
                    exit,
                    &NoOracle,
                    &mut AnalysisBudget::unlimited(),
                )
                .unwrap();
            let b = whole
                .local_sources(
                    cx(&session),
                    m,
                    exit,
                    &NoOracle,
                    &mut AnalysisBudget::unlimited(),
                )
                .unwrap();
            assert_eq!(
                a,
                b,
                "{label}: sources differ for {} (cluster {})",
                program.var(m).name(),
                cluster.id
            );
        }
    }
}

#[test]
fn theorem6_on_figures() {
    for (name, src) in bootstrap_alias::workloads::figures::all() {
        let p = bootstrap_alias::workloads::figures::parse_figure(src);
        check_theorem6(&p, name);
    }
}

#[test]
fn theorem6_on_handwritten_programs() {
    let programs = [
        (
            "stores_and_branches",
            "int a; int b; int cnd; int *x; int *y; int **z;
             void main() {
                 x = &a;
                 if (cnd) { z = &x; } else { z = &y; }
                 *z = &b;
                 y = *z;
             }",
        ),
        (
            "interprocedural",
            "int a; int b; int *g; int *h;
             int *pick(int *l, int *r) { if (a) { return l; } return r; }
             void set() { g = pick(&a, &b); }
             void main() { set(); h = g; free(g); }",
        ),
        (
            "recursion",
            "int a; int b; int cnd; int *x;
             void rec() { if (cnd) { rec(); x = &a; } else { x = &b; } }
             void main() { rec(); }",
        ),
    ];
    for (name, src) in programs {
        let p = parse_program(src).unwrap();
        check_theorem6(&p, name);
    }
}

#[test]
fn theorem6_on_generated_programs() {
    for seed in [11u64, 12, 13] {
        let config = GenConfig {
            name: format!("thm6_{seed}"),
            seed,
            n_funcs: 6,
            big_partitions: vec![BigPartition {
                size: 14,
                andersen_max: 6,
            }],
            small_partitions: 6,
            small_max: 4,
            singletons: 1,
            call_percent: 20,
            churn_communities: 0,
            control_flow: true,
        };
        let p = generator::generate(&config);
        check_theorem6(&p, &config.name);
    }
}

/// The paper's scalability claim in miniature: the relevant-statement
/// slice of a typical cluster is much smaller than the program.
#[test]
fn slices_are_small() {
    let config = GenConfig {
        name: "slice_size".into(),
        seed: 5,
        n_funcs: 12,
        big_partitions: vec![BigPartition {
            size: 40,
            andersen_max: 10,
        }],
        small_partitions: 30,
        small_max: 5,
        singletons: 2,
        call_percent: 15,
        churn_communities: 0,
        control_flow: true,
    };
    let p = generator::generate(&config);
    let session = Session::new(&p, Config::default());
    let total: usize = p.stmt_count();
    let mut small = 0usize;
    let mut clusters = 0usize;
    for cluster in session.cover().clusters() {
        let engine = ClusterEngine::new(cx(&session), cluster.members.clone(), 8);
        clusters += 1;
        if engine.relevant().stmt_count() * 4 < total {
            small += 1;
        }
    }
    assert!(
        small * 10 >= clusters * 9,
        "at least 90% of slices should be <25% of the program ({small}/{clusters})"
    );
}
