//! Soundness oracle: a concrete nondeterministic interpreter over the
//! four-form IR.
//!
//! Every final store reachable by actually executing the program (all
//! branch outcomes explored, loops folded by state deduplication, bounded
//! recursion) yields ground-truth alias facts. The analysis must predict
//! every one of them:
//!
//! * if `p` holds `&o` in some execution, `Addr(o)` must be among the
//!   engine's sources for `p` (Theorem 5 completeness);
//! * if `p` and `q` hold the same address, `may_alias(p, q)` must be true;
//! * Andersen and Steensgaard must also cover the pair, and the session
//!   cover must have a cluster containing both (the cover property).

use std::collections::{BTreeMap, HashSet, VecDeque};

use bootstrap_alias::analyses::{andersen, steensgaard};
use bootstrap_alias::core::{AnalysisBudget, Config, Session, Source};
use bootstrap_alias::ir::{CallTarget, Loc, Program, Stmt, StmtIdx, VarId};
use bootstrap_alias::workloads::{figures, generator, BigPartition, GenConfig};

/// A concrete pointer value.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
enum CVal {
    /// Address of an object.
    Addr(u32),
    /// The null value.
    Null,
    /// The value the named variable held at program entry.
    Entry(u32),
    /// An unanalyzable value (e.g. read through a non-address); never
    /// aliases anything in the oracle.
    Junk,
}

type Store = BTreeMap<u32, CVal>;

#[derive(Clone, Debug, PartialEq, Eq, Hash)]
struct State {
    loc: Loc,
    stack: Vec<Loc>, // return locations
    store: Store,
    /// Truthiness assumed for opaque condition values (program-entry
    /// values), so that two branches testing the same unmodified variable
    /// stay consistent along one execution — the correlation the
    /// path-sensitive mode exploits.
    assumptions: BTreeMap<CVal, bool>,
}

/// Explores every execution of `program` from `main`, returning the set of
/// final stores at main's exit. `None` if the state cap was hit (the test
/// then skips the program rather than reporting partial ground truth as
/// complete — though even partial truths must be predicted, we keep the
/// accounting simple).
fn run_concrete(program: &Program, max_states: usize) -> Option<Vec<Store>> {
    let entry = program.entry()?;
    let mut finals = Vec::new();
    let mut queue = VecDeque::new();
    let mut seen = HashSet::new();
    let init = State {
        loc: entry.entry(),
        stack: Vec::new(),
        store: Store::new(),
        assumptions: BTreeMap::new(),
    };
    queue.push_back(init);
    let mut states = 0usize;
    while let Some(state) = queue.pop_front() {
        if !seen.insert(state.clone()) {
            continue;
        }
        states += 1;
        if states > max_states {
            return None;
        }
        let func = program.func(state.loc.func);
        let read = |store: &Store, v: VarId| {
            store
                .get(&(v.index() as u32))
                .copied()
                .unwrap_or(CVal::Entry(v.index() as u32))
        };
        let mut next_store = state.store.clone();
        let mut jump_to: Option<(Loc, Vec<Loc>)> = None;
        match func.stmt(state.loc.stmt) {
            Stmt::Copy { dst, src } => {
                let v = read(&state.store, *src);
                next_store.insert(dst.index() as u32, v);
            }
            Stmt::AddrOf { dst, obj } => {
                next_store.insert(dst.index() as u32, CVal::Addr(obj.index() as u32));
            }
            Stmt::Null { dst } | Stmt::Free { dst } => {
                next_store.insert(dst.index() as u32, CVal::Null);
            }
            Stmt::Load { dst, src } => {
                let v = match read(&state.store, *src) {
                    CVal::Addr(o) => state.store.get(&o).copied().unwrap_or(CVal::Entry(o)),
                    _ => CVal::Junk,
                };
                next_store.insert(dst.index() as u32, v);
            }
            Stmt::Store { dst, src } => {
                if let CVal::Addr(o) = read(&state.store, *dst) {
                    let v = read(&state.store, *src);
                    next_store.insert(o, v);
                }
            }
            Stmt::Call(call) => {
                if let CallTarget::Direct(g) = call.target {
                    if state.stack.len() < 8 {
                        let ret_to = Loc::new(state.loc.func, state.loc.stmt);
                        let mut stack = state.stack.clone();
                        stack.push(ret_to);
                        jump_to = Some((program.func(g).entry(), stack));
                    }
                    // Too-deep recursion: treated as a skip (the analysis
                    // over-approximates this, which is the sound direction
                    // for the oracle).
                }
            }
            // The oracle checks the per-thread sequential semantics the
            // analyses compute: a spawned thread's effects are not folded
            // into the spawner (they are analyzed from the spawned
            // function's own entry), and lock/unlock do not touch values.
            Stmt::Spawn(_) | Stmt::Lock { .. } | Stmt::Unlock { .. } => {}
            Stmt::Return | Stmt::Skip => {}
        }
        if let Some((loc, stack)) = jump_to {
            queue.push_back(State {
                loc,
                stack,
                store: next_store,
                assumptions: state.assumptions.clone(),
            });
            continue;
        }
        let exit = func.exit().stmt;
        let at_exit_like = state.loc.stmt == exit;
        if at_exit_like {
            match state.stack.last() {
                Some(&ret_to) => {
                    let mut stack = state.stack.clone();
                    stack.pop();
                    // Resume at the successors of the call statement.
                    let caller = program.func(ret_to.func);
                    for &s in caller.succs(ret_to.stmt) {
                        queue.push_back(State {
                            loc: Loc::new(ret_to.func, s),
                            stack: stack.clone(),
                            store: next_store.clone(),
                            assumptions: state.assumptions.clone(),
                        });
                    }
                }
                None => finals.push(next_store.clone()),
            }
            continue;
        }
        let succs: Vec<StmtIdx> = match func.stmt(state.loc.stmt) {
            Stmt::Return => vec![exit],
            _ => func.succs(state.loc.stmt).to_vec(),
        };
        // Branches testing a plain variable follow its concrete value:
        // addresses are truthy, NULL is falsy, opaque entry values fork
        // once and stay consistent afterwards.
        let branch_var = func
            .branch_cond(state.loc.stmt)
            .filter(|_| succs.len() == 2);
        let arms: Vec<(StmtIdx, Option<(CVal, bool)>)> = match branch_var {
            Some(v) => match read(&next_store, v) {
                CVal::Addr(_) => vec![(succs[0], None)],
                CVal::Null => vec![(succs[1], None)],
                val @ CVal::Entry(_) => match state.assumptions.get(&val) {
                    Some(true) => vec![(succs[0], None)],
                    Some(false) => vec![(succs[1], None)],
                    None => vec![
                        (succs[0], Some((val, true))),
                        (succs[1], Some((val, false))),
                    ],
                },
                CVal::Junk => succs.iter().map(|&s| (s, None)).collect(),
            },
            None => succs.iter().map(|&s| (s, None)).collect(),
        };
        for (s, assume) in arms {
            let mut assumptions = state.assumptions.clone();
            if let Some((val, truth)) = assume {
                assumptions.insert(val, truth);
            }
            queue.push_back(State {
                loc: Loc::new(state.loc.func, s),
                stack: state.stack.clone(),
                store: next_store.clone(),
                assumptions,
            });
        }
    }
    Some(finals)
}

/// Checks every concrete alias fact against the analysis stack.
fn check_program(program: &Program, label: &str) {
    check_program_with(program, label, Config::default());
    // The path-sensitive mode prunes paths; it must never prune a feasible
    // one, so the same ground truth applies.
    check_program_with(
        program,
        &format!("{label}/path-sensitive"),
        Config {
            path_sensitive: true,
            ..Config::default()
        },
    );
}

fn check_program_with(program: &Program, label: &str, config: Config) {
    let finals = match run_concrete(program, 60_000) {
        Some(f) => f,
        None => panic!("{label}: state cap hit; shrink the test program"),
    };
    assert!(!finals.is_empty(), "{label}: no terminating execution");

    let session = Session::new(program, config);
    let az = session.analyzer();
    let an = andersen::analyze(program);
    let st = steensgaard::analyze(program);
    let exit = program.entry().unwrap().exit();
    let mut budget = AnalysisBudget::unlimited();

    let pointers: HashSet<u32> = session
        .pointers()
        .iter()
        .map(|v| v.index() as u32)
        .collect();

    for store in &finals {
        // Source completeness: a concretely held address must be a
        // predicted source.
        for (&v, &val) in store {
            if !pointers.contains(&v) {
                continue;
            }
            let var = VarId::new(v as usize);
            if let CVal::Addr(o) = val {
                let srcs = az.sources(var, exit, &mut budget).unwrap();
                let obj = VarId::new(o as usize);
                assert!(
                    srcs.iter().any(|(s, _)| *s == Source::Addr(obj)),
                    "{label}: {} concretely holds &{} at exit but sources are {:?}",
                    program.var(var).name(),
                    program.var(obj).name(),
                    srcs.iter()
                        .map(|(s, _)| s.display(program))
                        .collect::<Vec<_>>()
                );
                // Andersen must also know.
                assert!(
                    an.points_to(var).contains(o),
                    "{label}: Andersen missed {} -> {}",
                    program.var(var).name(),
                    program.var(obj).name()
                );
                // Steensgaard: the object must be in the pointee class.
                assert_eq!(
                    st.pointee(st.class_of(var)),
                    Some(st.class_of(obj)),
                    "{label}: Steensgaard pointee class mismatch for {}",
                    program.var(var).name()
                );
            }
        }
        // Alias completeness.
        let held: Vec<(u32, CVal)> = store
            .iter()
            .filter(|(v, val)| pointers.contains(v) && matches!(val, CVal::Addr(_)))
            .map(|(v, val)| (*v, *val))
            .collect();
        for (i, &(p, vp)) in held.iter().enumerate() {
            for &(q, vq) in &held[i + 1..] {
                if vp != vq {
                    continue;
                }
                let (pv, qv) = (VarId::new(p as usize), VarId::new(q as usize));
                assert!(
                    az.may_alias(pv, qv, exit).unwrap(),
                    "{label}: missed concrete alias {} / {}",
                    program.var(pv).name(),
                    program.var(qv).name()
                );
                assert!(
                    session
                        .cover()
                        .clusters_containing(pv)
                        .any(|c| c.contains(qv)),
                    "{label}: cover misses aliasing pair {} / {}",
                    program.var(pv).name(),
                    program.var(qv).name()
                );
            }
        }
    }
}

#[test]
fn figures_are_sound() {
    for (name, src) in figures::all() {
        let p = figures::parse_figure(src);
        check_program(&p, name);
    }
}

#[test]
fn tricky_handwritten_programs_are_sound() {
    let programs = [
        (
            "double_indirection",
            "int a; int b; int *x; int *y; int **z;
             void main() { x = &a; z = &x; *z = &b; y = *z; }",
        ),
        (
            "branchy_stores",
            "int a; int b; int c0; int *x; int *y; int **z;
             void main() {
                 if (c0) { z = &x; } else { z = &y; }
                 *z = &a;
                 if (c0) { *z = &b; }
             }",
        ),
        (
            "loop_rotation",
            "int a; int b; int c0; int *x; int *y;
             void main() {
                 x = &a; y = &b;
                 while (c0) { int *t; t = x; x = y; y = t; }
             }",
        ),
        (
            "call_chain_with_kill",
            "int a; int b; int *g;
             void set_a() { g = &a; }
             void set_b() { g = &b; }
             void main() { set_a(); set_b(); }",
        ),
        (
            "recursion_flip",
            "int a; int b; int c0; int *x;
             void rec() { if (c0) { x = &a; rec(); x = &b; } }
             void main() { rec(); }",
        ),
        (
            "free_then_realloc",
            "int a; int *x; int *y;
             void main() { x = &a; free(x); y = malloc(4); x = y; }",
        ),
        (
            "aliasing_through_param",
            "int a; int *g; int *h;
             void dup(int *v) { g = v; h = v; }
             void main() { dup(&a); }",
        ),
        (
            "store_through_param",
            "int a; int *x; int **slot;
             void put(int *v) { *slot = v; }
             void main() { slot = &x; put(&a); }",
        ),
    ];
    for (name, src) in programs {
        let p = bootstrap_alias::ir::parse_program(src).unwrap();
        check_program(&p, name);
    }
}

#[test]
fn generated_programs_are_sound() {
    // Small generated workloads across several seeds; interpreter state
    // deduplication keeps the exploration finite despite loops.
    for seed in [1u64, 2, 3, 4, 5] {
        let config = GenConfig {
            name: format!("sound{seed}"),
            seed,
            n_funcs: 5,
            big_partitions: vec![BigPartition {
                size: 10,
                andersen_max: 4,
            }],
            small_partitions: 4,
            small_max: 3,
            singletons: 1,
            call_percent: 25,
            churn_communities: 0,
            control_flow: true,
        };
        let p = generator::generate(&config);
        check_program(&p, &config.name);
    }
}

/// Every concrete execution's alias pairs must also hold in the matching
/// calling context (context-sensitive queries are still may-queries).
#[test]
fn context_sensitive_queries_are_sound_on_single_context() {
    let src = "int a; int *g;
         void set(int *v) { g = v; }
         void main() { set(&a); }";
    let p = bootstrap_alias::ir::parse_program(src).unwrap();
    let session = Session::new(&p, Config::default());
    let az = session.analyzer();
    let set = p.func_named("set").unwrap();
    let cs = session.callers_of(set)[0];
    let set_exit = p.func(set).exit();
    let g = p.var_named("g").unwrap();
    let v = p.var_named("set::v").unwrap();
    // In the only context, g and v both hold &a at set's exit.
    let alias = az
        .may_alias_in_context(g, v, set_exit, &[cs])
        .unwrap()
        .unwrap();
    assert!(alias);
}

#[test]
fn interpreter_smoke_check() {
    // Trivial program: x = &a on the only path.
    let p = bootstrap_alias::ir::parse_program("int a; int *x; void main() { x = &a; }").unwrap();
    let finals = run_concrete(&p, 10_000).unwrap();
    assert_eq!(finals.len(), 1);
    let x = p.var_named("x").unwrap().index() as u32;
    let a = p.var_named("a").unwrap().index() as u32;
    assert_eq!(finals[0].get(&x), Some(&CVal::Addr(a)));
}
