//! End-to-end coverage of the committed real-C workload
//! (`examples/real/bzlite.c`): it must parse, build a bootstrapped
//! session, resolve its indirect calls at every rung of the
//! FLTA → MLTA → points-to ladder with strictly shrinking call graphs,
//! and run the checker suite without an analysis failure (findings are
//! tolerated — the program is analyzed, not certified).

use bootstrap_alias::analyses::fpresolve::{self, FpResolver};
use bootstrap_alias::core::{Config, Session};
use bootstrap_alias::ir::{parse_program, Program};
use bootstrap_checks::{run_checks, CheckerKind};

fn source() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/examples/real/bzlite.c");
    std::fs::read_to_string(path).expect("workload file")
}

fn parsed() -> Program {
    parse_program(&source()).expect("bzlite.c must stay within the mini-C subset")
}

#[test]
fn bzlite_parses_and_partitions() {
    let program = parsed();
    assert!(program.func_count() >= 15, "a real program, not a toy");
    assert!(
        program.has_indirect_calls(),
        "fp dispatch must survive lowering"
    );
    // Field-sensitive locations: the codec instances' fp fields are
    // distinct variables with their own abstract locations.
    for name in [
        "rle_codec.run",
        "mtf_codec.run",
        "file_sink.put",
        "memo_sink.put",
        "tuning.cutoffs[*]",
        "input_buf[*]",
    ] {
        assert!(program.var_named(name).is_some(), "missing location {name}");
    }
    let session = Session::new(&program, Config::default());
    assert!(session.pointers().len() >= 20, "pointer-rich workload");
}

#[test]
fn resolver_ladder_shrinks_strictly_on_bzlite() {
    // One run reports all three candidate totals; each stage must also
    // install exactly its own total.
    let mut p = parsed();
    let r = fpresolve::resolve_calls(&mut p, FpResolver::PointsTo);
    assert_eq!(r.sites, 8, "8 fp-field call sites in compress_stream");
    assert!(
        r.edges_flta > r.edges_mlta && r.edges_mlta > r.edges_pts,
        "ladder must shrink strictly: flta {} / mlta {} / pts {}",
        r.edges_flta,
        r.edges_mlta,
        r.edges_pts
    );
    assert!(!p.has_indirect_calls());

    for stage in [FpResolver::Flta, FpResolver::Mlta, FpResolver::PointsTo] {
        let mut p = parsed();
        let s = fpresolve::resolve_calls(&mut p, stage);
        let expect = match stage {
            FpResolver::Flta => s.edges_flta,
            FpResolver::Mlta => s.edges_mlta,
            FpResolver::PointsTo => s.edges_pts,
        };
        assert_eq!(
            s.edges,
            expect,
            "stage {} installs its own edges",
            stage.name()
        );
        assert_eq!(
            (s.edges_flta, s.edges_mlta, s.edges_pts),
            (r.edges_flta, r.edges_mlta, r.edges_pts)
        );
        assert!(
            !p.has_indirect_calls(),
            "stage {} must rewrite every site",
            stage.name()
        );
    }
}

#[test]
fn points_to_stage_keeps_exactly_the_stored_targets() {
    let mut p = parsed();
    let r = fpresolve::resolve_calls(&mut p, FpResolver::PointsTo);
    // Each of the 8 sites stores exactly one function: pts is exact here.
    assert_eq!(r.edges_pts, 8);
    for f in ["rle_run", "mtf_run", "file_put", "mem_put"] {
        assert!(p.func_named(f).is_some());
    }
}

#[test]
fn bzlite_checks_end_to_end() {
    let mut program = parsed();
    fpresolve::resolve_calls(&mut program, FpResolver::PointsTo);
    // A bounded budget keeps the suite CI-friendly; degradation to a
    // coarser tier is acceptable, analysis failure is not.
    let config = Config {
        query_step_budget: 20_000,
        oracle_step_budget: 20_000,
        ..Config::default()
    };
    let session = Session::new(&program, config);
    let report = run_checks(&session, &CheckerKind::ALL);
    let queries: usize = report.stats.iter().map(|c| c.queries).sum();
    assert!(queries > 0, "the checkers must actually query the workload");
}
