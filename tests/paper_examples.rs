//! End-to-end reproduction of the paper's figure-level claims, at the
//! public API level.

use bootstrap_alias::analyses::{andersen, steensgaard};
use bootstrap_alias::core::{relevant_statements, AnalysisBudget, Config, Session};
use bootstrap_alias::ir::{Stmt, VarId};
use bootstrap_alias::workloads::figures;

fn var(p: &bootstrap_alias::ir::Program, n: &str) -> VarId {
    p.var_named(n).unwrap_or_else(|| panic!("missing var {n}"))
}

/// Figure 2: Steensgaard's graph has one node {p,q,r} -> {a,b,c};
/// Andersen's graph gives q out-degree three while p and r stay precise.
#[test]
fn figure2_graph_shapes() {
    let p = figures::parse_figure(figures::FIG2);
    let st = steensgaard::analyze(&p);
    assert_eq!(st.class_of(var(&p, "p")), st.class_of(var(&p, "q")));
    assert_eq!(st.class_of(var(&p, "q")), st.class_of(var(&p, "r")));
    assert_eq!(st.class_of(var(&p, "a")), st.class_of(var(&p, "b")));
    assert_eq!(st.class_of(var(&p, "b")), st.class_of(var(&p, "c")));
    assert_eq!(
        st.pointee(st.class_of(var(&p, "p"))),
        Some(st.class_of(var(&p, "a")))
    );

    let an = andersen::analyze(&p);
    assert_eq!(an.points_to(var(&p, "p")).len(), 1);
    assert_eq!(an.points_to(var(&p, "q")).len(), 3);
    assert_eq!(an.points_to(var(&p, "r")).len(), 1);

    // The Andersen clusters of the {p,q,r} partition are strictly smaller
    // than the partition itself.
    let pointers = vec![var(&p, "p"), var(&p, "q"), var(&p, "r")];
    let clusters = an.clusters(&pointers);
    assert!(clusters.iter().all(|c| c.members.len() <= 2));
    assert_eq!(clusters.len(), 3);
}

/// Figure 3: `3a: p = x` is not in St_{a,b}; 1a/2a/4a are.
#[test]
fn figure3_relevant_statement_slice() {
    let p = figures::parse_figure(figures::FIG3);
    let st = steensgaard::analyze(&p);
    let rel = relevant_statements(&p, &st, &[var(&p, "a"), var(&p, "b")]);
    assert!(!rel.contains_var(var(&p, "p")));
    let main = p.func(p.func_named("main").unwrap());
    let mut relevant_kinds = Vec::new();
    for (loc, stmt) in main.locs() {
        if stmt.is_pointer_assign() {
            relevant_kinds.push((rel.contains_stmt(loc), stmt.clone()));
        }
    }
    // Exactly one pointer assignment (p = x) is excluded.
    let excluded: Vec<_> = relevant_kinds.iter().filter(|(r, _)| !r).collect();
    assert_eq!(excluded.len(), 1);
    assert!(
        matches!(excluded[0].1, Stmt::Copy { dst, .. } if dst == var(&p, "p")),
        "only 3a: p = x is irrelevant"
    );
}

/// Figure 4: the maximally complete update sequence for `a` traces back to
/// `c`'s entry value through the store `*x = b` (the complete sequence
/// `4a` alone would stop at `b`).
#[test]
fn figure4_maximal_completion() {
    let p = figures::parse_figure(figures::FIG4);
    let session = Session::new(&p, Config::default());
    let az = session.analyzer();
    let exit = p.entry().unwrap().exit();
    let mut budget = AnalysisBudget::unlimited();
    let sources = az.sources(var(&p, "a"), exit, &mut budget).unwrap();
    let names: Vec<String> = sources.iter().map(|(s, _)| s.display(&p)).collect();
    assert!(
        names.contains(&"entry(c)".to_string()),
        "maximal completion must reach c, got {names:?}"
    );
    // And b's own value at the point of the store is also c's entry value,
    // so b and a may alias at exit.
    assert!(az.may_alias(var(&p, "a"), var(&p, "b"), exit).unwrap());
}

/// Figure 5: foo's summary for x is exactly (x, exit, w, true); z at 6a
/// resolves to u; bar never contributes to P1.
#[test]
fn figure5_summaries_and_splicing() {
    let p = figures::parse_figure(figures::FIG5);
    let session = Session::new(&p, Config::default());
    let az = session.analyzer();

    // Summary of foo for x.
    let x = var(&p, "x");
    let key = session.steens().partition_key(x);
    let engine = az.engine_for(key);
    let cx = bootstrap_alias::core::EngineCx {
        program: session.program(),
        steens: session.steens(),
        cg: session.callgraph(),
        index: session.relevant_index(),
    };
    let foo = p.func_named("foo").unwrap();
    let tuples = engine
        .borrow_mut()
        .exit_summary(cx, foo, x, &az, &mut AnalysisBudget::unlimited())
        .unwrap();
    assert_eq!(tuples.len(), 1);
    assert_eq!(
        tuples[0].value,
        bootstrap_alias::core::Value::Ptr(var(&p, "w"))
    );
    assert!(tuples[0].cond.is_top());

    // z at main's exit resolves to u's entry value (the paper's (z,6a,u,true)).
    let exit = p.entry().unwrap().exit();
    let mut budget = AnalysisBudget::unlimited();
    let sources = az.sources(var(&p, "z"), exit, &mut budget).unwrap();
    let names: Vec<String> = sources.iter().map(|(s, _)| s.display(&p)).collect();
    assert_eq!(names, vec!["entry(u)".to_string()]);

    // bar contains no relevant statement for P1 = {x, u, w, z}.
    let rel = relevant_statements(
        &p,
        session.steens(),
        &[x, var(&p, "u"), var(&p, "w"), var(&p, "z")],
    );
    assert!(!rel.touches_func(p.func_named("bar").unwrap()));
    assert!(rel.touches_func(foo));
}

/// Theorem 6 on the figures: analyzing a partition against its slice
/// `St_P` produces the same alias verdicts as analyzing it against the
/// whole program (here checked via the cover-driven alias sets being
/// consistent with whole-program Andersen).
#[test]
fn theorem6_slicing_preserves_aliases_on_figures() {
    for (_, src) in figures::all() {
        let p = figures::parse_figure(src);
        let an = andersen::analyze(&p);
        let session = Session::new(&p, Config::default());
        let az = session.analyzer();
        let exit = p.entry().unwrap().exit();
        let pointers: Vec<VarId> = session.pointers().to_vec();
        let mut budget = AnalysisBudget::unlimited();
        for &a in &pointers {
            for &b in &pointers {
                if a >= b {
                    continue;
                }
                // FSCS must be at least as precise as Andersen on
                // *object-backed* aliases (Andersen has no notion of
                // entry-value aliasing, so compare Addr sources only).
                let sa = az.sources(a, exit, &mut budget).unwrap();
                let sb = az.sources(b, exit, &mut budget).unwrap();
                let addr_alias = sa.iter().any(|(s1, _)| {
                    matches!(s1, bootstrap_alias::core::Source::Addr(_))
                        && sb.iter().any(|(s2, _)| s1 == s2)
                });
                if addr_alias {
                    assert!(
                        an.may_alias(a, b),
                        "FSCS reported an alias Andersen rules out: {} / {}",
                        p.var(a).name(),
                        p.var(b).name()
                    );
                }
            }
        }
    }
}

/// The paper's cover property: any two pointers that may alias share a
/// cluster of the session's cover (Theorems 6/7).
#[test]
fn cover_contains_all_andersen_alias_pairs_on_figures() {
    for (name, src) in figures::all() {
        let p = figures::parse_figure(src);
        let an = andersen::analyze(&p);
        let session = Session::new(&p, Config::default());
        let pointers: Vec<VarId> = session.pointers().to_vec();
        for &a in &pointers {
            for &b in &pointers {
                if a >= b || !an.may_alias(a, b) {
                    continue;
                }
                let shares = session
                    .cover()
                    .clusters_containing(a)
                    .any(|c| c.contains(b));
                assert!(
                    shares,
                    "{name}: aliasing pair {}/{} not covered by any cluster",
                    p.var(a).name(),
                    p.var(b).name()
                );
            }
        }
    }
}
