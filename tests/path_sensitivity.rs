//! Tests for the path-sensitivity extension (paper §3, "Path
//! Sensitivity"): branch literals in summary-tuple constraints weed out
//! infeasible paths.

use bootstrap_alias::core::{AnalysisBudget, Config, Session};
use bootstrap_alias::ir::parse_program;

/// The classic correlated-branches program: both branches test the same
/// unmodified variable, so (then₁, else₂) and (else₁, then₂) path
/// combinations are infeasible.
const CORRELATED: &str = "
    int c; int a; int b;
    int *x; int *y;
    void main() {
        if (c) { x = &a; } else { x = &b; }
        if (c) { y = &b; } else { y = &a; }
    }
";

fn config(path_sensitive: bool) -> Config {
    Config {
        path_sensitive,
        ..Config::default()
    }
}

#[test]
fn correlated_branches_insensitive_aliases() {
    // Path-insensitive: x in {&a, &b}, y in {&b, &a} — spurious alias.
    let p = parse_program(CORRELATED).unwrap();
    let session = Session::new(&p, config(false));
    let az = session.analyzer();
    let exit = p.entry().unwrap().exit();
    let (x, y) = (p.var_named("x").unwrap(), p.var_named("y").unwrap());
    assert!(az.may_alias(x, y, exit).unwrap());
}

#[test]
fn correlated_branches_sensitive_refutes() {
    // Path-sensitive: x = &a requires c, y = &a requires !c — never both.
    let p = parse_program(CORRELATED).unwrap();
    let session = Session::new(&p, config(true));
    let az = session.analyzer();
    let exit = p.entry().unwrap().exit();
    let (x, y) = (p.var_named("x").unwrap(), p.var_named("y").unwrap());
    assert!(!az.may_alias(x, y, exit).unwrap());

    // The sources carry the literals.
    let mut budget = AnalysisBudget::unlimited();
    let srcs = az.sources(x, exit, &mut budget).unwrap();
    assert_eq!(srcs.len(), 2);
    assert!(srcs.iter().all(|(_, cond)| !cond.is_top()));
}

#[test]
fn same_branch_same_arm_still_aliases() {
    // x = &a under c, y = &a under the *same* polarity: feasible.
    let p = parse_program(
        "int c; int a; int b;
         int *x; int *y;
         void main() {
             if (c) { x = &a; } else { x = &b; }
             if (c) { y = &a; } else { y = &b; }
         }",
    )
    .unwrap();
    let session = Session::new(&p, config(true));
    let az = session.analyzer();
    let exit = p.entry().unwrap().exit();
    let (x, y) = (p.var_named("x").unwrap(), p.var_named("y").unwrap());
    assert!(az.may_alias(x, y, exit).unwrap());
}

#[test]
fn modified_condition_breaks_correlation() {
    // c is reassigned between the branches: the literals must not
    // correlate (the second test sees a different value).
    let p = parse_program(
        "int c; int d; int a; int b;
         int *x; int *y;
         void main() {
             if (c) { x = &a; } else { x = &b; }
             c = d;
             if (c) { y = &b; } else { y = &a; }
         }",
    )
    .unwrap();
    let session = Session::new(&p, config(true));
    let az = session.analyzer();
    let exit = p.entry().unwrap().exit();
    let (x, y) = (p.var_named("x").unwrap(), p.var_named("y").unwrap());
    assert!(
        az.may_alias(x, y, exit).unwrap(),
        "havoc on the reassigned condition must keep the alias"
    );
}

#[test]
fn address_taken_condition_is_not_tracked() {
    // &c escapes, so a store could change c between the tests: no
    // correlation allowed.
    let p = parse_program(
        "int c; int a; int b;
         int *x; int *y; int *pc;
         void main() {
             pc = &c;
             if (c) { x = &a; } else { x = &b; }
             *pc = 0;
             if (c) { y = &b; } else { y = &a; }
         }",
    )
    .unwrap();
    let session = Session::new(&p, config(true));
    let az = session.analyzer();
    let exit = p.entry().unwrap().exit();
    let (x, y) = (p.var_named("x").unwrap(), p.var_named("y").unwrap());
    assert!(az.may_alias(x, y, exit).unwrap());
}

#[test]
fn loop_branch_literals_stay_sound() {
    // A loop whose branch variable is loop-invariant: every iteration
    // takes the same arm, so correlating is sound and the analysis still
    // sees both final values across the two initial branch outcomes.
    let p = parse_program(
        "int c; int a; int b;
         int *x;
         void main() {
             x = &b;
             while (c) { x = &a; }
         }",
    )
    .unwrap();
    let session = Session::new(&p, config(true));
    let az = session.analyzer();
    let exit = p.entry().unwrap().exit();
    let x = p.var_named("x").unwrap();
    let mut budget = AnalysisBudget::unlimited();
    let srcs = az.sources(x, exit, &mut budget).unwrap();
    let names: Vec<String> = srcs.iter().map(|(s, _)| s.display(&p)).collect();
    assert!(names.contains(&"&a".to_string()), "{names:?}");
    assert!(names.contains(&"&b".to_string()), "{names:?}");
}

#[test]
fn summaries_do_not_leak_branch_literals_across_frames() {
    // The callee assigns under a local branch; two separate calls must
    // both see both outcomes (no cross-frame correlation).
    let p = parse_program(
        "int a; int b; int *g; int *h;
         void set(int sel) { if (sel) { g = &a; } else { g = &b; } }
         void main() { set(1); h = g; set(0); }",
    )
    .unwrap();
    let session = Session::new(&p, config(true));
    let az = session.analyzer();
    let exit = p.entry().unwrap().exit();
    let (g, h) = (p.var_named("g").unwrap(), p.var_named("h").unwrap());
    // g after second call: both &a and &b possible; h from first call:
    // both too; they may alias.
    assert!(az.may_alias(g, h, exit).unwrap());
}

#[test]
fn path_sensitive_mode_agrees_with_concrete_truth_on_figures() {
    // Path-sensitive must never refute an alias the insensitive mode
    // derives from an actually feasible path: check on the figure
    // programs that enabling the mode only ever removes pairs that the
    // insensitive mode also could not justify concretely. (Here: the
    // figures have no correlated branches, so verdicts must be identical.)
    for (name, src) in bootstrap_alias::workloads::figures::all() {
        let p = bootstrap_alias::workloads::figures::parse_figure(src);
        let s1 = Session::new(&p, config(false));
        let s2 = Session::new(&p, config(true));
        let (a1, a2) = (s1.analyzer(), s2.analyzer());
        let exit = p.entry().unwrap().exit();
        let ptrs: Vec<_> = s1.pointers().to_vec();
        for &x in &ptrs {
            for &y in &ptrs {
                if x >= y {
                    continue;
                }
                assert_eq!(
                    a1.may_alias(x, y, exit).unwrap(),
                    a2.may_alias(x, y, exit).unwrap(),
                    "{name}: verdict changed for {} / {}",
                    p.var(x).name(),
                    p.var(y).name()
                );
            }
        }
    }
}

#[test]
fn must_alias_across_a_diamond_via_bdd_coverage() {
    // x and y get the same address on each arm, but different addresses
    // per arm: path-insensitively there are two sources each (not a
    // singleton), yet on every path they coincide — the BDD coverage check
    // proves must-alias.
    let p = parse_program(
        "int c; int a; int b;
         int *x; int *y;
         void main() {
             if (c) { x = &a; y = &a; } else { x = &b; y = &b; }
         }",
    )
    .unwrap();
    let (x, y) = (p.var_named("x").unwrap(), p.var_named("y").unwrap());
    let exit = p.entry().unwrap().exit();

    // Path-insensitive: cannot prove must.
    let s1 = Session::new(&p, config(false));
    assert!(!s1.analyzer().must_alias(x, y, exit).unwrap());
    assert!(s1.analyzer().may_alias(x, y, exit).unwrap());

    // Path-sensitive: coverage (c) | (!c) is a tautology.
    let s2 = Session::new(&p, config(true));
    assert!(s2.analyzer().must_alias(x, y, exit).unwrap());
}

#[test]
fn coverage_must_alias_rejects_partial_coverage() {
    // On the else arm x and y differ: not a must-alias.
    let p = parse_program(
        "int c; int a; int b; int d;
         int *x; int *y;
         void main() {
             if (c) { x = &a; y = &a; } else { x = &b; y = &d; }
         }",
    )
    .unwrap();
    let (x, y) = (p.var_named("x").unwrap(), p.var_named("y").unwrap());
    let exit = p.entry().unwrap().exit();
    let s = Session::new(&p, config(true));
    assert!(!s.analyzer().must_alias(x, y, exit).unwrap());
    assert!(s.analyzer().may_alias(x, y, exit).unwrap());
}

#[test]
fn coverage_must_alias_rejects_nondeterministic_values() {
    // A second, uncorrelated branch makes x ambiguous on some paths.
    let p = parse_program(
        "int c; int k; int a; int b;
         int *x; int *y;
         void main() {
             if (c) { x = &a; y = &a; } else { x = &b; y = &b; }
             if (k) { x = &b; }
         }",
    )
    .unwrap();
    let (x, y) = (p.var_named("x").unwrap(), p.var_named("y").unwrap());
    let exit = p.entry().unwrap().exit();
    let s = Session::new(&p, config(true));
    // On (c, k) = (true, true): x = &b, y = &a — not a must alias.
    assert!(!s.analyzer().must_alias(x, y, exit).unwrap());
}
